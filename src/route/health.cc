#include "route/health.h"

#include "sim/logging.h"

namespace muxwise::route {

const char* HealthName(ReplicaHealth state) {
  switch (state) {
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kSuspect:
      return "suspect";
    case ReplicaHealth::kDown:
      return "down";
    case ReplicaHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

HealthTracker::HealthTracker(const HealthPolicy& policy, std::size_t replicas)
    : policy_(policy), states_(replicas) {
  MUX_CHECK(policy_.suspect_after_misses >= 1);
  MUX_CHECK(policy_.down_after_misses >= policy_.suspect_after_misses);
  MUX_CHECK(policy_.recovery_probation_beats >= 0);
}

HealthTracker::Transition HealthTracker::To(State& s, ReplicaHealth next) {
  Transition t;
  t.from = s.state;
  t.to = next;
  t.changed = next != s.state;
  s.state = next;
  return t;
}

void HealthTracker::OnCrashSignal(std::size_t r, sim::Time now) {
  MUX_CHECK(r < states_.size());
  State& s = states_[r];
  s.alive = false;
  // First signal of this outage wins: the failover latency measured is
  // crash -> Down declaration, and a re-crash mid-detection is the
  // same outage from the router's point of view.
  if (s.crash_signal_at == sim::kTimeNever) s.crash_signal_at = now;
}

void HealthTracker::OnRecoverySignal(std::size_t r) {
  MUX_CHECK(r < states_.size());
  State& s = states_[r];
  s.alive = true;
  s.crash_signal_at = sim::kTimeNever;
}

bool HealthTracker::OnStragglerSignal(std::size_t r, double slowdown) {
  MUX_CHECK(r < states_.size());
  State& s = states_[r];
  const bool was = s.straggling;
  s.straggling = slowdown > 1.0;
  if (s.straggling && s.state == ReplicaHealth::kHealthy) {
    To(s, ReplicaHealth::kSuspect);
    return true;
  }
  if (!s.straggling && was && s.state == ReplicaHealth::kSuspect &&
      s.alive && s.misses == 0) {
    To(s, ReplicaHealth::kHealthy);
    return true;
  }
  return false;
}

HealthTracker::Transition HealthTracker::Beat(std::size_t r, sim::Time now) {
  MUX_CHECK(r < states_.size());
  (void)now;  // Transitions are beat-counted; `now` kept for symmetry.
  State& s = states_[r];
  if (s.alive) {
    s.misses = 0;
    switch (s.state) {
      case ReplicaHealth::kDown:
        s.probation = 0;
        return To(s, ReplicaHealth::kRecovering);
      case ReplicaHealth::kRecovering:
        if (++s.probation >= policy_.recovery_probation_beats) {
          return To(s, ReplicaHealth::kHealthy);
        }
        return Transition{};
      case ReplicaHealth::kSuspect:
        // A suspect that answers and is not straggling was a transient
        // miss (e.g. crash signal raced a recovery): clear it.
        if (!s.straggling) return To(s, ReplicaHealth::kHealthy);
        return Transition{};
      case ReplicaHealth::kHealthy:
        return Transition{};
    }
    return Transition{};
  }
  // Missed beat.
  if (s.state == ReplicaHealth::kDown) return Transition{};
  ++s.misses;
  if (s.misses >= policy_.down_after_misses) {
    return To(s, ReplicaHealth::kDown);
  }
  if (s.misses >= policy_.suspect_after_misses &&
      s.state != ReplicaHealth::kSuspect) {
    return To(s, ReplicaHealth::kSuspect);
  }
  return Transition{};
}

bool HealthTracker::Stable(std::size_t r) const {
  MUX_CHECK(r < states_.size());
  const State& s = states_[r];
  if (s.alive) {
    // Fixed points while alive: Healthy, or Suspect pinned by an
    // uncleared straggler window. Recovering/Down still progress.
    return s.state == ReplicaHealth::kHealthy ||
           (s.state == ReplicaHealth::kSuspect && s.straggling);
  }
  // Dead replicas converge to Down and stay there.
  return s.state == ReplicaHealth::kDown;
}

}  // namespace muxwise::route
