#include "route/health.h"

#include "sim/logging.h"

namespace muxwise::route {

const char* HealthName(ReplicaHealth state) {
  switch (state) {
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kSuspect:
      return "suspect";
    case ReplicaHealth::kDown:
      return "down";
    case ReplicaHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

const char* SuspectReasonName(SuspectReason reason) {
  switch (reason) {
    case SuspectReason::kNone:
      return "none";
    case SuspectReason::kSlow:
      return "slow";
    case SuspectReason::kLying:
      return "lying";
    case SuspectReason::kUnreachable:
      return "unreachable";
    case SuspectReason::kMisses:
      return "misses";
  }
  return "unknown";
}

HealthTracker::HealthTracker(const HealthPolicy& policy, std::size_t replicas)
    : policy_(policy), states_(replicas) {
  MUX_CHECK(policy_.suspect_after_misses >= 1);
  MUX_CHECK(policy_.down_after_misses >= policy_.suspect_after_misses);
  MUX_CHECK(policy_.recovery_probation_beats >= 0);
  MUX_CHECK(policy_.suspect_exit_beats >= 1);
  MUX_CHECK(policy_.zombie_after_beats >= 1);
  MUX_CHECK(policy_.zombie_down_beats >= policy_.zombie_after_beats);
}

HealthTracker::Transition HealthTracker::To(State& s, ReplicaHealth next) {
  Transition t;
  t.from = s.state;
  t.to = next;
  t.changed = next != s.state;
  s.state = next;
  if (next == ReplicaHealth::kHealthy) s.reason = SuspectReason::kNone;
  if (next == ReplicaHealth::kHealthy || next == ReplicaHealth::kSuspect) {
    s.good_beats = 0;
  }
  return t;
}

void HealthTracker::OnCrashSignal(std::size_t r, sim::Time now) {
  MUX_CHECK(r < states_.size());
  State& s = states_[r];
  s.alive = false;
  // First signal of this outage wins: the failover latency measured is
  // crash -> Down declaration, and a re-crash mid-detection is the
  // same outage from the router's point of view.
  if (s.crash_signal_at == sim::kTimeNever) s.crash_signal_at = now;
}

void HealthTracker::OnRecoverySignal(std::size_t r) {
  MUX_CHECK(r < states_.size());
  State& s = states_[r];
  s.alive = true;
  s.crash_signal_at = sim::kTimeNever;
}

bool HealthTracker::OnStragglerSignal(std::size_t r, double slowdown) {
  MUX_CHECK(r < states_.size());
  State& s = states_[r];
  const bool was = s.straggling;
  s.straggling = slowdown > 1.0;
  if (s.straggling && s.state == ReplicaHealth::kHealthy) {
    s.reason = SuspectReason::kSlow;
    To(s, ReplicaHealth::kSuspect);
    return true;
  }
  if (!s.straggling && was && s.state == ReplicaHealth::kSuspect &&
      s.alive && s.misses == 0) {
    To(s, ReplicaHealth::kHealthy);
    return true;
  }
  return false;
}

HealthTracker::Transition HealthTracker::OnPartitionSignal(std::size_t r,
                                                           bool drop_to,
                                                           bool drop_from,
                                                           sim::Time now) {
  MUX_CHECK(r < states_.size());
  if (!policy_.partition_detection) return Transition{};
  State& s = states_[r];
  if (!drop_to && !drop_from) {
    // Heal. The replica never stopped being alive; clear the partition
    // flags and the outage timestamp so a later real outage measures
    // its own latency. Beats walk any Down/Suspect state back.
    s.silenced = false;
    s.unreachable = false;
    if (s.alive) s.crash_signal_at = sim::kTimeNever;
    return Transition{};
  }
  if (drop_from) {
    // Silence onset is this outage's timestamp: misses now accumulate
    // toward Down exactly as for a crash, though the replica is alive.
    s.silenced = true;
    if (s.crash_signal_at == sim::kTimeNever) s.crash_signal_at = now;
  }
  if (drop_to) {
    s.unreachable = true;
    if (s.state == ReplicaHealth::kHealthy) {
      s.reason = SuspectReason::kUnreachable;
      return To(s, ReplicaHealth::kSuspect);
    }
  }
  return Transition{};
}

HealthTracker::Transition HealthTracker::ObserveProgress(std::size_t r,
                                                         std::uint64_t
                                                             watermark,
                                                         std::size_t in_flight,
                                                         sim::Time now) {
  MUX_CHECK(r < states_.size());
  if (!policy_.zombie_detection) return Transition{};
  State& s = states_[r];
  if (in_flight == 0 || !s.watermark_seen || watermark != s.last_watermark) {
    // Progress, or nothing to progress (an idle replica is
    // indistinguishable from a healthy one — no work is being lost):
    // reset the stall clock and lift any zombie verdict. Beat()'s
    // ordinary edges walk a previously-held Down back up from here.
    s.last_watermark = watermark;
    s.watermark_seen = true;
    s.stall_beats = 0;
    if (s.reason == SuspectReason::kLying) {
      s.reason = s.state == ReplicaHealth::kSuspect ? SuspectReason::kMisses
                                                    : SuspectReason::kNone;
      if (s.alive && !s.silenced) s.crash_signal_at = sim::kTimeNever;
    }
    return Transition{};
  }
  // The watermark is frozen with work in flight: the replica answers
  // heartbeats but lies about doing work.
  ++s.stall_beats;
  if (s.stall_beats == 1 && s.crash_signal_at == sim::kTimeNever) {
    s.crash_signal_at = now;  // Stall onset: the outage being measured.
  }
  if (s.stall_beats >= policy_.zombie_down_beats &&
      s.state != ReplicaHealth::kDown) {
    s.reason = SuspectReason::kLying;
    return To(s, ReplicaHealth::kDown);
  }
  if (s.stall_beats >= policy_.zombie_after_beats &&
      s.state == ReplicaHealth::kHealthy) {
    s.reason = SuspectReason::kLying;
    return To(s, ReplicaHealth::kSuspect);
  }
  return Transition{};
}

HealthTracker::Transition HealthTracker::Beat(std::size_t r, sim::Time now) {
  MUX_CHECK(r < states_.size());
  (void)now;  // Transitions are beat-counted; `now` kept for symmetry.
  State& s = states_[r];
  // A silenced replica is alive but its heartbeats do not arrive: the
  // router observes a missed beat (the whole point of the asymmetric
  // partition — deadline detection fires against a live instance).
  if (s.alive && !s.silenced) {
    s.misses = 0;
    switch (s.state) {
      case ReplicaHealth::kDown:
        // A lying replica's good heartbeats are the lie: hold it Down
        // until ObserveProgress sees its watermark move again.
        if (s.reason == SuspectReason::kLying) return Transition{};
        s.probation = 0;
        return To(s, ReplicaHealth::kRecovering);
      case ReplicaHealth::kRecovering:
        if (++s.probation >= policy_.recovery_probation_beats) {
          return To(s, ReplicaHealth::kHealthy);
        }
        return Transition{};
      case ReplicaHealth::kSuspect:
        // Pinned suspects: an uncleared straggler window, an uncleared
        // zombie verdict, or an unhealed router->replica partition.
        if (s.straggling || s.unreachable ||
            s.reason == SuspectReason::kLying) {
          return Transition{};
        }
        // A suspect that answers was a transient miss (e.g. crash
        // signal raced a recovery, or a flap's up phase): clear it
        // after suspect_exit_beats consecutive good beats.
        if (++s.good_beats >= policy_.suspect_exit_beats) {
          return To(s, ReplicaHealth::kHealthy);
        }
        return Transition{};
      case ReplicaHealth::kHealthy:
        if (s.unreachable) {
          // Entered unreachable while not Healthy (e.g. mid-recovery);
          // converge to the pinned Suspect the signal edge produces.
          s.reason = SuspectReason::kUnreachable;
          return To(s, ReplicaHealth::kSuspect);
        }
        return Transition{};
    }
    return Transition{};
  }
  // Missed beat.
  s.good_beats = 0;
  if (s.state == ReplicaHealth::kDown) return Transition{};
  ++s.misses;
  if (s.misses >= policy_.down_after_misses) {
    return To(s, ReplicaHealth::kDown);
  }
  if (s.misses >= policy_.suspect_after_misses &&
      s.state != ReplicaHealth::kSuspect) {
    s.reason = SuspectReason::kMisses;
    return To(s, ReplicaHealth::kSuspect);
  }
  return Transition{};
}

bool HealthTracker::Stable(std::size_t r) const {
  MUX_CHECK(r < states_.size());
  const State& s = states_[r];
  if (s.alive && !s.silenced) {
    // A lying replica is never a fixed point: beats keep sampling its
    // watermark — toward Down while it stalls, back up once it moves.
    if (s.reason == SuspectReason::kLying) return false;
    // An unreachable replica pins at Suspect until the partition heals.
    if (s.unreachable) return s.state == ReplicaHealth::kSuspect;
    // Fixed points while alive: Healthy, or Suspect pinned by an
    // uncleared straggler window. Recovering/Down still progress.
    return s.state == ReplicaHealth::kHealthy ||
           (s.state == ReplicaHealth::kSuspect && s.straggling);
  }
  // Dead (or silenced) replicas converge to Down and stay there.
  return s.state == ReplicaHealth::kDown;
}

}  // namespace muxwise::route
