#ifndef MUXWISE_ROUTE_AFFINITY_H_
#define MUXWISE_ROUTE_AFFINITY_H_

#include <cstdint>
#include <map>
#include <optional>

#include "kv/token_seq.h"

namespace muxwise::route {

/**
 * Deterministic cache-affinity key of a request's prompt: a hash over
 * the token spans of the first `prefix_tokens` prompt tokens. Two
 * requests share a key exactly when they share that prompt prefix
 * (spans identify (stream, begin, end) ranges, so equal spans mean
 * equal tokens), which is the same prefix the replica's radix KV cache
 * would deduplicate — a key hit means the mapped replica already holds
 * reusable KV pages for this prompt.
 */
std::uint64_t PrefixAffinityKey(const kv::TokenSeq& prompt,
                                std::int64_t prefix_tokens);

/**
 * Prefix-key -> replica map behind cache-affinity routing. The router
 * records where each prefix was last dispatched and prefers that
 * replica for future requests with the same key; when a replica dies
 * its entries are evicted (the KV they pointed at is gone), so stale
 * affinity can never pin traffic to a cold or dead instance.
 *
 * Ordered map on purpose: iteration order is part of the deterministic
 * event stream, and keys are value hashes, never pointers.
 */
class AffinityTable {
 public:
  void Record(std::uint64_t key, std::size_t replica) {
    table_[key] = replica;
  }

  std::optional<std::size_t> Lookup(std::uint64_t key) const {
    const auto it = table_.find(key);
    if (it == table_.end()) return std::nullopt;
    return it->second;
  }

  /** Drops every entry mapped to `replica` (its cache is lost). */
  void EvictReplica(std::size_t replica);

  std::size_t size() const { return table_.size(); }

 private:
  std::map<std::uint64_t, std::size_t> table_;
};

}  // namespace muxwise::route

#endif  // MUXWISE_ROUTE_AFFINITY_H_
