#include "core/estimator.h"

#include <algorithm>
#include <cmath>

#include "gpu/gpu.h"
#include "sim/logging.h"
#include "sim/simulator.h"

namespace muxwise::core {

namespace {

/** Power-of-4 bucket index of a token count (0 for <= 0). */
int Log4Bucket(std::int64_t tokens) {
  if (tokens <= 0) return 0;
  return 1 + static_cast<int>(std::log2(static_cast<double>(tokens)) / 2.0);
}

/** Batch-size bucket: log2. */
int BatchBucket(std::size_t batch) {
  if (batch <= 1) return 0;
  return 1 + static_cast<int>(std::log2(static_cast<double>(batch)));
}

}  // namespace

ContentionEstimator::ContentionEstimator(llm::SoloRunPredictor predictor,
                                         const serve::Deployment& deployment,
                                         Options options)
    : predictor_(std::move(predictor)),
      deployment_(deployment),
      options_(options) {}

ContentionEstimator::CellKey ContentionEstimator::CellFor(
    const PrefillDesc& prefill, std::size_t decode_batch,
    std::int64_t decode_mean_ctx, int decode_sms) const {
  CellKey cell;
  cell.prefill_new_bucket = Log4Bucket(prefill.new_tokens);
  cell.prefill_reused_bucket = Log4Bucket(prefill.reused_tokens);
  cell.decode_batch_bucket = BatchBucket(decode_batch);
  cell.decode_ctx_bucket = Log4Bucket(decode_mean_ctx);
  cell.partition_index = decode_sms / deployment_.gpu.partition_granularity;
  return cell;
}

sim::Duration ContentionEstimator::PredictDecodeSolo(
    const std::vector<std::int64_t>& ctx, int sms) const {
  return predictor_.PredictDecode(ctx, sms);
}

sim::Duration ContentionEstimator::PredictPrefill(
    const std::vector<llm::SeqWork>& batch, int sms) const {
  return predictor_.PredictPrefill(batch, sms);
}

sim::Duration ContentionEstimator::WorstCaseDecode(
    const std::vector<std::int64_t>& ctx, int decode_sms,
    const PrefillDesc& prefill) const {
  const sim::Duration solo = predictor_.PredictDecode(ctx, decode_sms);
  double factor = 1.0;
  if (options_.inflate_by_fit_error) {
    factor += predictor_.DecodeMaxError(decode_sms);
  }
  if (prefill.new_tokens > 0 || prefill.reused_tokens > 0) {
    std::int64_t total_ctx = 0;
    for (std::int64_t c : ctx) total_ctx += c;
    const std::int64_t mean_ctx =
        ctx.empty() ? 0 : total_ctx / static_cast<std::int64_t>(ctx.size());
    factor *= GuardFor(CellFor(prefill, ctx.size(), mean_ctx, decode_sms));
  }
  return static_cast<sim::Duration>(static_cast<double>(solo) * factor);
}

double ContentionEstimator::GuardFor(const CellKey& cell) const {
  auto it = guard_.find(cell);
  if (it == guard_.end()) return options_.default_guard;
  return it->second;
}

bool ContentionEstimator::ObserveDecode(const CellKey& cell,
                                        double slowdown) {
  ++observations_;
  auto [it, inserted] = guard_.try_emplace(cell, options_.default_guard);
  // A fresh cell starts at the conservative default; observations only
  // ever raise it (worst case semantics).
  if (slowdown > it->second) {
    it->second = slowdown;
    ++guard_raises_;
    return true;
  }
  return false;
}

double ContentionEstimator::MaxGuard() const {
  double max_guard = options_.default_guard;
  for (const auto& [cell, g] : guard_) max_guard = std::max(max_guard, g);
  return max_guard;
}

ContentionEstimator ContentionEstimator::BuildOffline(
    const serve::Deployment& deployment) {
  return BuildOffline(deployment, Options());
}

ContentionEstimator ContentionEstimator::BuildOffline(
    const serve::Deployment& deployment, Options options) {
  // --- Solo-run predictor training (paper: a few hours, one-time) ---
  sim::Simulator scratch;
  gpu::Gpu probe(&scratch, deployment.gpu);
  llm::CostModel cost(deployment.model, deployment.num_gpus, deployment.gpu);
  const std::vector<int> sm_options = [&deployment] {
    serve::Deployment d = deployment;
    return d.SmPartitionOptions();
  }();
  llm::SoloRunPredictor predictor =
      llm::SoloRunPredictor::Train(probe, cost, sm_options);

  ContentionEstimator estimator(std::move(predictor), deployment, options);

  // --- Contention-guard grid profiling (paper §3.3.2) ---
  // Powers-of-4 token grid from 2K to 128K, ~20 decode batch sizes
  // sampled coarsely here, every partition configuration; each pair is
  // co-run on a scratch device and the measured decode slowdown keyed
  // into its grid cell.
  const std::vector<std::int64_t> token_grid = {2048, 8192, 32768, 131072};
  const std::vector<int> batch_grid = {1, 4, 16, 64, 256};
  const std::vector<int> group_layers = {1, 2, 4, 8};

  const int total_sms = deployment.gpu.sm_count;
  for (int decode_sms : sm_options) {
    if (decode_sms >= total_sms) continue;  // Full device: no co-run.
    const int prefill_sms = total_sms - decode_sms;
    for (std::int64_t pf_new : token_grid) {
      for (std::int64_t pf_reused : token_grid) {
        // The paper excludes the 128K+128K corner (beyond the context
        // window of the served models).
        if (pf_new + pf_reused > deployment.model.max_context) continue;
        for (int bs : batch_grid) {
          for (std::int64_t dc_ctx : token_grid) {
            const std::vector<std::int64_t> ctx(
                static_cast<std::size_t>(bs), dc_ctx);
            const gpu::Kernel decode_kernel = cost.DecodeIteration(ctx);
            double worst = 1.0;
            for (int layers : group_layers) {
              sim::Simulator co_sim;
              gpu::Gpu device(&co_sim, deployment.gpu);
              const gpu::StreamId pf_stream =
                  device.CreateStream(prefill_sms);
              const gpu::StreamId dc_stream =
                  device.CreateStream(decode_sms);
              const gpu::Kernel pf_kernel = cost.PrefillLayers(
                  {llm::SeqWork{pf_new, pf_reused}},
                  std::min(layers, deployment.model.num_layers));
              sim::Time decode_end = 0;
              device.Launch(pf_stream, pf_kernel, {});
              device.Launch(dc_stream, decode_kernel,
                            [&co_sim, &decode_end] {
                              decode_end = co_sim.Now();
                            });
              co_sim.Run();
              const double solo =
                  device.SoloDurationSeconds(decode_kernel, decode_sms);
              if (solo > 0.0) {
                worst = std::max(
                    worst, sim::ToSeconds(decode_end) / solo);
              }
            }
            const CellKey cell = estimator.CellFor(
                PrefillDesc{pf_new, pf_reused}, ctx.size(), dc_ctx,
                decode_sms);
            auto [it, inserted] = estimator.guard_.try_emplace(cell, worst);
            if (!inserted) it->second = std::max(it->second, worst);
          }
        }
      }
    }
  }
  // Profiled cells now carry measured maxima; unvisited cells fall back
  // to the conservative default guard.
  estimator.observations_ = 0;
  estimator.guard_raises_ = 0;
  return estimator;
}

}  // namespace muxwise::core
