#include "core/dispatcher.h"

#include <algorithm>
#include <cmath>

#include "sim/logging.h"

namespace muxwise::core {

SloAwareDispatcher::SloAwareDispatcher(const serve::Deployment& deployment,
                                       const ContentionEstimator* estimator,
                                       Options options)
    : deployment_(deployment), estimator_(estimator), options_(options) {
  MUX_CHECK(estimator_ != nullptr);
  partition_options_ = deployment_.SmPartitionOptions();
}

int SloAwareDispatcher::ChooseDecodeSms(
    const std::vector<std::int64_t>& decode_ctx, bool prefill_pending,
    const PrefillDesc& prefill) const {
  const int full = deployment_.gpu.sm_count;
  if (!prefill_pending) return full;
  if (decode_ctx.empty()) {
    // Nothing decoding: keep the minimum partition warm so a merge can
    // start immediately; prefill gets nearly everything.
    return partition_options_.front();
  }
  const sim::Duration budget = deployment_.slo.tbt - options_.tbt_margin;
  for (int sms : partition_options_) {
    if (sms >= full) break;  // Multiplexed configs only.
    const sim::Duration worst =
        estimator_->WorstCaseDecode(decode_ctx, sms, prefill);
    if (worst <= budget) return sms;
  }
  // No multiplexed partition fits: take the largest sub-device option;
  // online refinement will record what actually happens.
  return partition_options_.size() >= 2
             ? partition_options_[partition_options_.size() - 2]
             : partition_options_.back();
}

int SloAwareDispatcher::PrefillLayersToLaunch(
    sim::Duration decode_estimate,
    const std::vector<llm::SeqWork>& prefill_batch, int prefill_sms,
    int layers_remaining) const {
  MUX_CHECK(layers_remaining >= 1);
  if (decode_estimate <= 0) {
    return std::min(layers_remaining, options_.idle_layer_group);
  }
  const sim::Duration phase =
      estimator_->PredictPrefill(prefill_batch, prefill_sms);
  const int total_layers = deployment_.model.num_layers;
  if (phase <= 0) return std::min(layers_remaining, options_.idle_layer_group);
  const double n_pl = std::ceil(static_cast<double>(decode_estimate) *
                                static_cast<double>(total_layers) /
                                static_cast<double>(phase));
  return std::clamp(static_cast<int>(n_pl), 1, layers_remaining);
}

bool SloAwareDispatcher::ShouldPreempt(sim::Time now,
                                       sim::Duration active_remaining,
                                       bool active_is_preemptor,
                                       sim::Time active_deadline,
                                       sim::Duration incoming_duration,
                                       sim::Time incoming_deadline) const {
  if (!options_.preemption) return false;
  if (active_is_preemptor) return false;  // No recursive preemption.
  // Without preemption the incoming batch waits behind the active one.
  const sim::Time incoming_finish_waiting =
      now + active_remaining + incoming_duration;
  if (incoming_finish_waiting <= incoming_deadline) return false;
  // Preempting must not doom the active batch, which resumes after the
  // incoming one. (Even when the incoming batch can no longer make its
  // own deadline, running it first still cuts its TTFT — the paper's
  // Fig. 20 CDF improves across all percentiles.)
  const sim::Time active_finish_preempted =
      now + incoming_duration + active_remaining;
  return active_finish_preempted <= active_deadline;
}

}  // namespace muxwise::core
