#ifndef MUXWISE_CORE_MULTIPLEX_ENGINE_H_
#define MUXWISE_CORE_MULTIPLEX_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "gpu/gpu.h"
#include "gpu/host.h"
#include "obs/trace.h"
#include "serve/deployment.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace muxwise::core {

/**
 * The bubble-less multiplex engine (paper §3.2): owns the device, the
 * host launch thread, and the two green-context streams prefill and
 * decode execute on, and implements the mechanics the scheduling policy
 * sits on — partition reconfiguration, layer-group launches, and the
 * launch-latency accounting responsible for the bubbles of Fig. 9.
 *
 * Modes select the multiplexing substrate:
 *  - kSpatial: managed green-context SM partitions (MuxWise proper).
 *  - kUnmanaged: two plain CUDA streams, both granted the full device —
 *    the WindServe-style prototype of §6; contention is uncontrolled.
 *  - kTemporal: prefill layers share the decode stream, time-multiplexed
 *    into decode slack — the enhanced Tropical-style variant of §6.
 */
class MultiplexEngine {
 public:
  enum class Mode { kSpatial, kUnmanaged, kTemporal };

  struct Options {
    Mode mode = Mode::kSpatial;

    /** Host cost of a green-context reconfiguration (stream sync). */
    sim::Duration reconfig_cost = sim::Microseconds(10);
  };

  MultiplexEngine(sim::Simulator* simulator,
                  const serve::Deployment& deployment, Options options);

  gpu::Gpu& device() { return *device_; }
  const gpu::Gpu& device() const { return *device_; }
  gpu::HostThread& host() { return *host_; }

  /**
   * Applies an SM partition (decode / prefill). Charges the host the
   * reconfiguration cost when the partition actually changes. Ignored
   * in kUnmanaged and kTemporal modes.
   */
  void SetPartition(int decode_sms, int prefill_sms);

  /** Launches one decode iteration; `done` fires at kernel completion. */
  void LaunchDecode(const gpu::Kernel& kernel, sim::Duration launch_cost,
                    std::function<void()> done);

  /** Launches one prefill layer group on the prefill context. */
  void LaunchPrefillGroup(const gpu::Kernel& kernel,
                          sim::Duration launch_cost,
                          std::function<void()> done);

  int decode_sms() const { return decode_sms_; }
  int prefill_sms() const { return prefill_sms_; }
  Mode mode() const { return options_.mode; }

  /**
   * Crash support: aborts everything running or queued on the device
   * and invalidates every launch still sitting on the host thread (host
   * submissions cannot be cancelled, so in-flight launch lambdas carry
   * the epoch at submission and fall through once it moves on). `done`
   * callbacks of invalidated launches are never invoked.
   */
  void Abort();

  /** Crash epoch; bumped by every Abort(). */
  std::uint64_t epoch() const { return epoch_; }

  /** Bubble ratio averaged over the two active streams (paper §4.4.2). */
  double AverageBubbleRatio() const;

  /** Number of partition reconfigurations performed. */
  std::size_t reconfigurations() const { return reconfigurations_; }

  /**
   * Registers partition-conservation audits (in kSpatial mode the
   * decode + prefill green contexts never oversubscribe the device,
   * across every reconfiguration) plus the device's own audits.
   */
  void RegisterAudits(check::InvariantRegistry& registry) const;

  /**
   * Attaches a tracer and forwards it to the device ("gpu/" tracks).
   * Reconfigurations become "reconfig" complete spans on the
   * "partition" track (duration = the modelled host sync cost), and the
   * configured split is published as "decode-sms" / "prefill-sms"
   * counters — in kUnmanaged mode both report the full device, which is
   * exactly the oversubscription the exclusivity assertion rejects.
   */
  void AttachTracer(obs::Tracer tracer);

 private:
  /** Publishes the current partition counters (no-op when untraced). */
  void TracePartition() const;

  sim::Simulator* sim_;
  serve::Deployment deployment_;
  Options options_;

  std::unique_ptr<gpu::Gpu> device_;
  std::unique_ptr<gpu::HostThread> host_;
  gpu::StreamId decode_stream_ = 0;
  gpu::StreamId prefill_stream_ = 0;

  int decode_sms_ = 0;
  int prefill_sms_ = 0;
  std::size_t reconfigurations_ = 0;
  std::uint64_t epoch_ = 0;

  obs::Tracer tracer_;
};

}  // namespace muxwise::core

#endif  // MUXWISE_CORE_MULTIPLEX_ENGINE_H_
