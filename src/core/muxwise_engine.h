#ifndef MUXWISE_CORE_MUXWISE_ENGINE_H_
#define MUXWISE_CORE_MUXWISE_ENGINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/dispatcher.h"
#include "fault/fault_aware.h"
#include "fault/recovery.h"
#include "core/estimator.h"
#include "core/multiplex_engine.h"
#include "gpu/cluster.h"
#include "sim/channel.h"
#include "kv/kv_pool.h"
#include "llm/cost_model.h"
#include "overload/controller.h"
#include "serve/deployment.h"
#include "serve/engine.h"
#include "sim/simulator.h"

namespace muxwise::core {

/**
 * MuxWise: LLM serving with intra-GPU prefill-decode multiplexing
 * (paper §3). Decode iterations run continuously on a best-fit SM
 * reservation sized by the contention-tolerant estimator; prefill
 * executes layer-wise on the remaining SMs, merging into the decode
 * batch through query-based synchronization, with optional preemption
 * of long prefills by short ones.
 *
 * Ablation flags reproduce the paper's studies: `layerwise` off
 * launches whole prefill phases (Fig. 19 variant 1), `query_sync` off
 * blocks decode on prefill completion for merging (Fig. 19 variant 2),
 * `dispatch.preemption` off disables preemptive scheduling (Fig. 20),
 * and MultiplexEngine modes give the WindServe / temporal-only
 * prototypes of §6.
 *
 * Failure recovery (when Options::recovery is enabled): the multiplexed
 * instance is fault domain 0. A crash aborts both green contexts
 * (MultiplexEngine::Abort), drops the KV pool, and re-enqueues every
 * admitted request — including partially prefilled and preempted
 * batches — for recomputation; new work is shed under overload, and
 * waiting requests whose SLO-derived deadline passes are abandoned.
 */
class MuxWiseEngine : public fault::FaultAwareEngine {
 public:
  struct Options {
    MultiplexEngine::Options mux;
    SloAwareDispatcher::Options dispatch;

    /** Layer-wise prefill execution (paper §3.2.3). */
    bool layerwise = true;

    /** Query-based synchronization for batch merging (paper §3.2.3). */
    bool query_sync = true;

    /** Online refinement of the contention guard (paper §3.1). */
    bool online_refinement = true;

    int max_decode_batch = 256;
    std::int64_t prefill_batch_tokens = 16384;
    int prefill_batch_requests = 8;

    /** Failure recovery; disabled by default (fault-free runs). */
    fault::RecoveryPolicy recovery;

    /**
     * Overload control (SLO-class admission, brownout modes, KV-spill
     * preemption); disabled by default so event streams stay
     * bit-identical to builds without the subsystem.
     */
    overload::Policy overload;
  };

  /**
   * `estimator` is the offline-profiled estimator for this deployment
   * (ContentionEstimator::BuildOffline); the engine takes its own copy
   * so online refinement stays per-instance.
   */
  MuxWiseEngine(sim::Simulator* simulator,
                const serve::Deployment& deployment,
                ContentionEstimator estimator, Options options);
  ~MuxWiseEngine() override;

  const char* name() const override;
  void Enqueue(std::unique_ptr<serve::Request> request) override;
  std::size_t InFlight() const override { return in_flight_; }
  void RegisterAudits(check::InvariantRegistry& registry) const override;

  void InjectCrash(std::size_t domain) override;
  void InjectRecovery(std::size_t domain) override;
  void InjectStraggler(std::size_t domain, double slowdown) override;
  void InjectZombie(std::size_t domain, bool frozen) override;
  void InjectDegrade(std::size_t domain, double flops_factor,
                     double bandwidth_factor) override;

  /** Device kernel completions — the zombie detector's watermark. */
  std::uint64_t ProgressWatermark() const override;

  /**
   * Forwards the tracer to the multiplex substrate (gpu + partition
   * tracks) and the KV pool ("kv" track); prefill layer groups and
   * decode iterations become "prefill-chunk" / "decode-step" spans on
   * the engine tracks.
   */
  void AttachTracer(obs::Tracer tracer) override;

  MultiplexEngine& mux() { return *mux_; }
  const ContentionEstimator& estimator() const { return estimator_; }
  const kv::KvPool& pool() const { return *pool_; }

  /** Completed decode iterations (diagnostics). */
  std::size_t decode_iterations() const { return decode_iterations_; }

  /** Prefill batches that were preempted. */
  std::size_t preemptions() const { return preemptions_; }

  /** Overload controller (inert when Options::overload.enabled is off). */
  const overload::Controller& overload_controller() const { return *ctl_; }

  /** KV-pressure preemptions that spilled the victim to host memory. */
  std::size_t kv_spills() const { return kv_spills_; }

  /** KV-pressure preemptions that dropped + recomputed the victim. */
  std::size_t kv_recomputes() const { return kv_recomputes_; }

  /** Spilled requests restored to HBM and resumed. */
  std::size_t kv_restores() const { return kv_restores_; }

  // --- Fleet-router surface (src/route/) ----------------------------

  /**
   * Drains every request that has not started compute — the waiting
   * queue (FIFO order) plus admission-gated arrivals — handing
   * ownership to the fleet router for re-homing once this replica is
   * declared down. In-flight and queued-demand accounting is settled
   * here; the extracted requests' pending deadline/retry events become
   * no-ops (they look the requests up by id and find nothing).
   * Single-replica runs never call this, so their event streams are
   * bit-identical to builds without a router.
   */
  std::vector<std::unique_ptr<serve::Request>> ExtractForRehoming();

  /**
   * Lands a migrated KV prefix in this replica's cache: the pages are
   * committed unpinned (evictable), so the next admission of the
   * re-homed request matches them instead of recomputing. The wire
   * time was already paid on the router's fleet link.
   */
  void WarmCachePrefix(const kv::TokenSeq& prefix);

  /** Samples of (time, decode_sms) at each partition decision (Fig. 18). */
  struct PartitionSample {
    sim::Time time;
    int decode_sms;
    int prefill_sms;
    bool prefill_active;
  };
  const std::vector<PartitionSample>& partition_trace() const {
    return partition_trace_;
  }

  /**
   * Bounds the partition trace to the first `capacity` samples (0 keeps
   * it unbounded, the default). Million-request streaming runs record
   * one sample per scheduling decision, so an unbounded trace would
   * grow without limit; the cap keeps the earliest samples (enough for
   * Fig. 18-style plots) and counts the rest as dropped.
   */
  void set_partition_trace_capacity(std::size_t capacity) {
    partition_trace_capacity_ = capacity;
  }
  std::size_t partition_samples_dropped() const {
    return partition_samples_dropped_;
  }

 private:
  struct PrefillJob {
    std::vector<std::unique_ptr<serve::Request>> requests;
    std::vector<llm::SeqWork> work;
    std::int64_t new_tokens = 0;
    std::int64_t reused_tokens = 0;
    int layers_done = 0;
    int layers_inflight = 0;
    bool is_preemptor = false;
    bool pause_requested = false;
    sim::Time earliest_deadline = sim::kTimeNever;
  };

  void PumpScheduler();
  void FlushCompletions();
  void TryStartPrefillBatch();
  void ContinuePrefill();
  void OnPrefillGroupDone(int layers);
  void CompleteActivePrefill();
  void MaybeLaunchDecode();
  void OnDecodeIterationDone(sim::Time launch_time, sim::Duration solo,
                             ContentionEstimator::CellKey cell,
                             bool had_cotenant);
  void FinishRequest(std::unique_ptr<serve::Request> request);
  void MaybePreemptFor(const serve::Request& incoming);

  /** Deadline event: reaps request `id` if it is still waiting. */
  void OnDeadline(std::int64_t id);

  // --- Overload control (all paths gated on options_.overload.enabled,
  // so disabled runs execute the exact legacy instruction stream) -----
  bool OverloadOn() const { return options_.overload.enabled; }

  /** Overload-aware admission front half of Enqueue. */
  void EnqueueOverload(std::unique_ptr<serve::Request> request);

  /** Tail shared by both admission paths: queue + pump. */
  void AdmitToWaiting(std::unique_ptr<serve::Request> request);

  /** Re-offers a bucket-delayed request to the controller. */
  void OnAdmissionRetry(std::int64_t id);

  /** Feeds KV occupancy + queue delay into the brownout ladder. */
  void ObserveOverload();

  /** Waiting + gated requests of `slo_class` (hard-bound input). */
  std::size_t QueuedInClass(workload::SloClass slo_class) const;

  /**
   * Decode-safe KV preemption: evicts the best victim (lowest class,
   * least progress, cheapest recompute) from the paused prefill batch
   * so `head` can be admitted. Victims spill their KV over the host
   * link when that is cheaper than recomputing, else requeue for
   * recomputation. Returns true when a victim was evicted.
   */
  bool TryPreemptForKv(const serve::Request& head);

  /**
   * KV-pressure pause: when the best-class waiting head cannot fit in
   * the pool while the active prefill batch carries strictly
   * lower-class work, requests a pause at the next layer-group
   * boundary so TryPreemptForKv can harvest victims from it.
   */
  void MaybeKvPreempt();

  /** Outbound spill transfer landed for request `id`. */
  void OnSpillOutDone(std::int64_t id);

  /** Starts at most one inbound restore transfer when eligible. */
  void MaybeRestoreSpilled();

  /** Inbound restore transfer landed for request `id`. */
  void OnRestoreDone(std::int64_t id);

  /** Prefill work remaining in the active job, as an estimator input. */
  PrefillDesc ActivePrefillDesc() const;
  sim::Duration ActivePrefillRemaining() const;

  sim::Simulator* sim_;
  serve::Deployment deployment_;
  Options options_;

  std::unique_ptr<MultiplexEngine> mux_;
  std::unique_ptr<kv::KvPool> pool_;
  std::unique_ptr<llm::CostModel> cost_;
  ContentionEstimator estimator_;
  std::unique_ptr<SloAwareDispatcher> dispatcher_;

  std::deque<std::unique_ptr<serve::Request>> waiting_;
  std::unique_ptr<PrefillJob> active_;
  std::unique_ptr<PrefillJob> preempted_;

  // --- Overload-control state (all empty / inert when disabled) ------
  std::unique_ptr<overload::Controller> ctl_;
  std::unique_ptr<sim::Channel> host_link_;

  /** Admission-delayed requests awaiting a bucket/deferral retry. */
  std::vector<std::unique_ptr<serve::Request>> gated_;

  /** A prefill-phase victim whose KV lives (or is moving) off-HBM. */
  struct SpilledEntry {
    std::unique_ptr<serve::Request> request;
    std::int64_t tokens = 0;  // Share of the pool's spill ledger.
    int layers_done = 0;
    double bytes = 0.0;
    bool out_done = false;   // Outbound transfer landed.
    bool restoring = false;  // Inbound transfer in flight.
  };
  std::vector<SpilledEntry> spilled_;

  /** Single-request resume jobs built by completed restores. */
  std::deque<std::unique_ptr<PrefillJob>> restored_;
  bool restore_in_flight_ = false;

  std::size_t kv_spills_ = 0;
  std::size_t kv_recomputes_ = 0;
  std::size_t kv_restores_ = 0;
  std::size_t decode_victims_ = 0;  // Must stay 0: decode-safe audit.
  std::size_t queued_hwm_ = 0;      // waiting_ + gated_ high-water mark.
  std::vector<std::unique_ptr<serve::Request>> merge_ready_;
  std::vector<std::unique_ptr<serve::Request>> decoding_;

  // Finished requests awaiting notification: completions are handed
  // back only once engine state is consistent, because NotifyComplete
  // can synchronously re-enter Enqueue with the session's next turn.
  std::vector<std::unique_ptr<serve::Request>> pending_completions_;

  bool decode_in_flight_ = false;
  bool decode_blocked_on_merge_ = false;
  // Set when an approved preemption awaits its preemptor batch; the
  // paused batch resumes only after that batch (and only it) runs.
  bool preemptor_pending_ = false;
  // Set when a KV-pressure pause is in flight (MaybeKvPreempt): the
  // paused batch is held once for victim harvesting instead of being
  // resumed immediately.
  bool kv_preempt_pending_ = false;
  sim::Duration last_decode_estimate_ = 0;
  std::size_t in_flight_ = 0;

  /** KV demand (input + output tokens) of everything in waiting_. */
  std::int64_t waiting_demand_ = 0;
  std::size_t decode_iterations_ = 0;
  std::size_t preemptions_ = 0;
  std::uint64_t prefill_group_serial_ = 0;
  std::vector<PartitionSample> partition_trace_;
  std::size_t partition_trace_capacity_ = 0;  // 0 = unbounded.
  std::size_t partition_samples_dropped_ = 0;
};

}  // namespace muxwise::core

#endif  // MUXWISE_CORE_MUXWISE_ENGINE_H_
