#ifndef MUXWISE_CORE_ESTIMATOR_H_
#define MUXWISE_CORE_ESTIMATOR_H_

#include <compare>
#include <cstdint>
#include <map>
#include <vector>

#include "llm/cost_model.h"
#include "llm/predictor.h"
#include "serve/deployment.h"
#include "sim/time.h"

namespace muxwise::core {

/** Coarse descriptor of the prefill work co-running with decode. */
struct PrefillDesc {
  std::int64_t new_tokens = 0;
  std::int64_t reused_tokens = 0;
};

/**
 * The contention-tolerant estimator (paper §3.3): a solo-run predictor
 * (Eq. 1/2, trained per SM option) combined with a contention guard — a
 * 5-D grid over (prefill new tokens, prefill reused tokens, decode
 * batch size, decode per-sequence context, partition configuration)
 * storing the maximum observed decode slowdown per cell.
 *
 * The guard is initialized by one-time offline pairwise profiling at
 * powers-of-4 granularity (paper: ~7K samples, 12 hours on hardware;
 * here: the same grid against the simulated device) and refined online
 * from runtime measurements. Per §3.4.1 the guard covers only decode;
 * prefill predictions need no worst case.
 */
class ContentionEstimator {
 public:
  struct CellKey {
    int prefill_new_bucket = 0;
    int prefill_reused_bucket = 0;
    int decode_batch_bucket = 0;
    int decode_ctx_bucket = 0;
    int partition_index = 0;  // decode SMs / granularity.

    auto operator<=>(const CellKey&) const = default;
  };

  struct Options {
    /**
     * Guard used for cells never profiled. Matches the paper's
     * observation that slowdown stays within 20% (A100) / 30% (H100),
     * plus margin.
     */
    double default_guard = 1.35;

    /** Extra inflation covering the solo-run predictor's fit error. */
    bool inflate_by_fit_error = true;
  };

  ContentionEstimator(llm::SoloRunPredictor predictor,
                      const serve::Deployment& deployment, Options options);

  /**
   * Runs the one-time offline profiling pass: trains the solo-run
   * predictor and fills the contention guard by co-running
   * prefill/decode kernel pairs on a scratch simulated device.
   */
  static ContentionEstimator BuildOffline(const serve::Deployment& deployment,
                                          Options options);
  static ContentionEstimator BuildOffline(const serve::Deployment& deployment);

  /** Cell for a (prefill, decode, partition) combination. */
  CellKey CellFor(const PrefillDesc& prefill, std::size_t decode_batch,
                  std::int64_t decode_mean_ctx, int decode_sms) const;

  /** Solo-run decode-iteration estimate (Eq. 2). */
  sim::Duration PredictDecodeSolo(const std::vector<std::int64_t>& ctx,
                                  int sms) const;

  /** Solo-run prefill-phase estimate (Eq. 1). */
  sim::Duration PredictPrefill(const std::vector<llm::SeqWork>& batch,
                               int sms) const;

  /**
   * Worst-case decode-iteration latency on `decode_sms` SMs while the
   * described prefill occupies the rest: solo prediction inflated by
   * the fit-error margin and the guard factor of the grid cell.
   */
  sim::Duration WorstCaseDecode(const std::vector<std::int64_t>& ctx,
                                int decode_sms,
                                const PrefillDesc& prefill) const;

  /** Guard factor for a cell (default when never observed). */
  double GuardFor(const CellKey& cell) const;

  /**
   * Online refinement (paper §3.1): records a measured decode slowdown
   * (actual / predicted-solo) for its cell, raising the guard when the
   * observation exceeds it. Returns true if the guard was raised.
   */
  bool ObserveDecode(const CellKey& cell, double slowdown);

  const llm::SoloRunPredictor& predictor() const { return predictor_; }
  std::size_t guard_cells() const { return guard_.size(); }
  std::size_t observations() const { return observations_; }
  std::size_t guard_raises() const { return guard_raises_; }

  /** Largest guard factor present in the grid. */
  double MaxGuard() const;

 private:
  llm::SoloRunPredictor predictor_;
  serve::Deployment deployment_;
  Options options_;
  std::map<CellKey, double> guard_;
  std::size_t observations_ = 0;
  std::size_t guard_raises_ = 0;
};

}  // namespace muxwise::core

#endif  // MUXWISE_CORE_ESTIMATOR_H_
