#include "core/muxwise_engine.h"

#include <algorithm>
#include <utility>

#include "serve/admission.h"
#include "sim/logging.h"

namespace muxwise::core {

MuxWiseEngine::MuxWiseEngine(sim::Simulator* simulator,
                             const serve::Deployment& deployment,
                             ContentionEstimator estimator, Options options)
    : fault::FaultAwareEngine(simulator, deployment.slo, options.recovery),
      sim_(simulator),
      deployment_(deployment),
      options_(options),
      estimator_(std::move(estimator)) {
  mux_ = std::make_unique<MultiplexEngine>(sim_, deployment_, options_.mux);
  pool_ = std::make_unique<kv::KvPool>(deployment_.PoolTokens(
      deployment_.num_gpus,
      /*extra_graph_fraction=*/0.032));  // Per-partition decode graphs, §4.5.
  cost_ = std::make_unique<llm::CostModel>(deployment_.model,
                                           deployment_.num_gpus,
                                           deployment_.gpu);
  dispatcher_ = std::make_unique<SloAwareDispatcher>(deployment_, &estimator_,
                                                     options_.dispatch);
}

MuxWiseEngine::~MuxWiseEngine() = default;

const char* MuxWiseEngine::name() const {
  switch (options_.mux.mode) {
    case MultiplexEngine::Mode::kSpatial:
      return "MuxWise";
    case MultiplexEngine::Mode::kUnmanaged:
      return "WindServe*";
    case MultiplexEngine::Mode::kTemporal:
      return "Temporal*";
  }
  return "MuxWise";
}

void MuxWiseEngine::Enqueue(std::unique_ptr<serve::Request> request) {
  if (FaultsEnabled()) {
    if (ShedNow(waiting_demand_ + DemandTokens(*request),
                pool_->capacity_tokens())) {
      MarkTerminal(*request, serve::Outcome::kShed);
      NotifyComplete(std::move(request));
      return;
    }
    request->deadline = DeadlineFor(*request);
    sim_->ScheduleAt(request->deadline,
                     [this, id = request->spec->id] { OnDeadline(id); });
    waiting_demand_ += DemandTokens(*request);
  }
  ++in_flight_;
  request->phase = serve::Phase::kQueued;
  const serve::Request& incoming = *request;
  waiting_.push_back(std::move(request));
  MaybePreemptFor(incoming);
  PumpScheduler();
}

void MuxWiseEngine::OnDeadline(std::int64_t id) {
  // Only waiting requests are reaped; admitted work runs to completion.
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    if ((*it)->spec->id != id) continue;
    auto request = std::move(*it);
    waiting_.erase(it);
    waiting_demand_ -= DemandTokens(*request);
    MarkTerminal(*request, serve::Outcome::kTimedOut);
    MUX_CHECK(in_flight_ > 0);
    --in_flight_;
    NotifyComplete(std::move(request));
    return;
  }
}

void MuxWiseEngine::PumpScheduler() {
  if (DomainDown(0)) return;
  if (active_ != nullptr && !waiting_.empty()) {
    // Scheduling-point preemption check against the shortest waiter.
    const serve::Request* shortest = waiting_.front().get();
    for (const auto& request : waiting_) {
      if (request->spec->input_tokens < shortest->spec->input_tokens) {
        shortest = request.get();
      }
    }
    MaybePreemptFor(*shortest);
  }
  // A pause requested between layer groups swaps immediately; with a
  // group in flight the swap waits for the group boundary
  // (OnPrefillGroupDone).
  if (active_ != nullptr && active_->pause_requested &&
      active_->layers_inflight == 0) {
    MUX_CHECK(preempted_ == nullptr);
    active_->pause_requested = false;
    preempted_ = std::move(active_);
    ++preemptions_;
  }
  TryStartPrefillBatch();
  MaybeLaunchDecode();  // Decode launches first (§3.2.2 priority).
  ContinuePrefill();
}

void MuxWiseEngine::TryStartPrefillBatch() {
  if (active_ != nullptr) return;

  // A paused batch resumes once no preemptor is pending; only the batch
  // created for an approved preemption runs ahead of it (no recursive
  // preemption, and no starvation by later arrivals).
  if (preempted_ != nullptr && !preemptor_pending_) {
    active_ = std::move(preempted_);
    active_->pause_requested = false;
    return;
  }

  const std::size_t running = decoding_.size() + merge_ready_.size();
  if (running >= static_cast<std::size_t>(options_.max_decode_batch)) return;
  if (waiting_.empty()) {
    if (preempted_ != nullptr) {
      // The would-be preemptor vanished: resume the paused batch.
      preemptor_pending_ = false;
      active_ = std::move(preempted_);
      active_->pause_requested = false;
    }
    return;
  }

  auto job = std::make_unique<PrefillJob>();
  const bool building_preemptor = preemptor_pending_;
  if (building_preemptor) {
    // Short requests preempt long ones (§3.4.2): pull the smallest
    // prefills to the front of the queue for the preemptor batch.
    std::stable_sort(waiting_.begin(), waiting_.end(),
                     [](const std::unique_ptr<serve::Request>& a,
                        const std::unique_ptr<serve::Request>& b) {
                       return a->spec->input_tokens - a->cached_tokens <
                              b->spec->input_tokens - b->cached_tokens;
                     });
  }
  std::int64_t batch_tokens = 0;
  while (!waiting_.empty() &&
         static_cast<int>(job->requests.size()) <
             options_.prefill_batch_requests &&
         batch_tokens < options_.prefill_batch_tokens &&
         running + job->requests.size() <
             static_cast<std::size_t>(options_.max_decode_batch)) {
    serve::Request& head = *waiting_.front();
    if (!serve::AdmitToPool(*pool_, head, sim_->Now())) break;
    head.phase = serve::Phase::kPrefill;
    head.prefill_start = sim_->Now();
    if (FaultsEnabled()) waiting_demand_ -= DemandTokens(head);
    job->work.push_back(
        llm::SeqWork{head.prefill_tokens, head.cached_tokens});
    job->new_tokens += head.prefill_tokens;
    job->reused_tokens += head.cached_tokens;
    batch_tokens += head.prefill_tokens;
    job->earliest_deadline = std::min(
        job->earliest_deadline,
        head.arrival + deployment_.slo.TtftTargetFor(head.spec->input_tokens));
    job->requests.push_back(std::move(waiting_.front()));
    waiting_.pop_front();
  }
  if (job->requests.empty()) {
    if (preempted_ != nullptr) {
      // Pool pressure blocked the preemptor: resume rather than stall.
      preemptor_pending_ = false;
      active_ = std::move(preempted_);
      active_->pause_requested = false;
    }
    return;
  }
  job->is_preemptor = preemptor_pending_;
  preemptor_pending_ = false;
  active_ = std::move(job);
}

PrefillDesc MuxWiseEngine::ActivePrefillDesc() const {
  if (active_ == nullptr) return PrefillDesc{};
  return PrefillDesc{active_->new_tokens, active_->reused_tokens};
}

sim::Duration MuxWiseEngine::ActivePrefillRemaining() const {
  if (active_ == nullptr) return 0;
  const int total_layers = deployment_.model.num_layers;
  const int remaining = total_layers - active_->layers_done;
  const sim::Duration phase =
      estimator_.PredictPrefill(active_->work, mux_->prefill_sms());
  return static_cast<sim::Duration>(
      static_cast<double>(phase) * remaining / total_layers);
}

void MuxWiseEngine::ContinuePrefill() {
  if (active_ == nullptr || active_->layers_inflight > 0) return;
  if (active_->pause_requested) return;  // Swap happens at group end.
  const int total_layers = deployment_.model.num_layers;
  const int remaining = total_layers - active_->layers_done;
  MUX_CHECK(remaining > 0);

  const bool decode_live = decode_in_flight_ || !decoding_.empty();
  int prefill_sms = mux_->prefill_sms();
  if (!decode_live && options_.mux.mode == MultiplexEngine::Mode::kSpatial) {
    // Decode terminated (paper Fig. 9, bubble type 2): move the later
    // prefill layers into a full-device green context.
    mux_->SetPartition(deployment_.gpu.partition_granularity,
                       deployment_.gpu.sm_count);
    prefill_sms = deployment_.gpu.sm_count;
  }
  if (options_.mux.mode != MultiplexEngine::Mode::kSpatial) {
    prefill_sms = deployment_.gpu.sm_count;
  }

  int layers = remaining;
  if (options_.layerwise) {
    if (options_.mux.mode == MultiplexEngine::Mode::kTemporal) {
      // Fit layer groups into the decode slack (Tropical-style).
      const sim::Duration slack =
          deployment_.slo.tbt - last_decode_estimate_ -
          dispatcher_->options().tbt_margin;
      const sim::Duration phase =
          estimator_.PredictPrefill(active_->work, prefill_sms);
      if (decode_live && phase > 0) {
        const double fit = static_cast<double>(std::max<sim::Duration>(
                               0, slack)) *
                           total_layers / static_cast<double>(phase);
        layers = std::clamp(static_cast<int>(fit), 1, remaining);
      } else {
        layers = std::min(remaining, dispatcher_->options().idle_layer_group);
      }
    } else {
      layers = decode_live
                   ? dispatcher_->PrefillLayersToLaunch(
                         last_decode_estimate_, active_->work, prefill_sms,
                         remaining)
                   : std::min(remaining,
                              dispatcher_->options().idle_layer_group);
    }
  }

  gpu::Kernel kernel = cost_->PrefillLayers(active_->work, layers);
  const sim::Duration launch_cost = cost_->PrefillLayerLaunch() * layers;
  active_->layers_inflight = layers;
  ++prefill_group_serial_;
  tracer_.SpanBegin("engine/prefill", "prefill-chunk",
                    static_cast<std::int64_t>(prefill_group_serial_),
                    static_cast<double>(layers));
  mux_->LaunchPrefillGroup(kernel, launch_cost,
                           [this, layers] { OnPrefillGroupDone(layers); });
}

void MuxWiseEngine::OnPrefillGroupDone(int layers) {
  MUX_CHECK(active_ != nullptr);
  // One group in flight at a time, so the live serial is the last one.
  tracer_.SpanEnd("engine/prefill", "prefill-chunk",
                  static_cast<std::int64_t>(prefill_group_serial_));
  active_->layers_done += layers;
  active_->layers_inflight = 0;

  if (active_->layers_done >= deployment_.model.num_layers) {
    CompleteActivePrefill();
  } else if (active_->pause_requested) {
    MUX_CHECK(preempted_ == nullptr);
    active_->pause_requested = false;
    preempted_ = std::move(active_);
    ++preemptions_;
  }
  FlushCompletions();
  PumpScheduler();
}

void MuxWiseEngine::FlushCompletions() {
  while (!pending_completions_.empty()) {
    auto request = std::move(pending_completions_.back());
    pending_completions_.pop_back();
    NotifyComplete(std::move(request));
  }
}

void MuxWiseEngine::CompleteActivePrefill() {
  const sim::Time now = sim_->Now();
  auto job = std::move(active_);
  for (auto& request : job->requests) {
    request->EmitToken(now);  // First token.
    if (request->DecodeFinished()) {
      FinishRequest(std::move(request));
    } else {
      request->phase = serve::Phase::kDecode;
      merge_ready_.push_back(std::move(request));
    }
  }
  if (preempted_ != nullptr) {
    active_ = std::move(preempted_);
    active_->pause_requested = false;
  }
  // The merge is observed via query-based synchronization; without it
  // the decode loop was blocked waiting for exactly this completion.
  decode_blocked_on_merge_ = false;
}

void MuxWiseEngine::MaybeLaunchDecode() {
  if (decode_in_flight_) return;

  // Query-based synchronization: completed prefills merge into the
  // decode batch at iteration-construction time (paper §3.2.3).
  for (auto& request : merge_ready_) {
    decoding_.push_back(std::move(request));
  }
  merge_ready_.clear();

  if (decoding_.empty()) return;

  if (!options_.query_sync && active_ != nullptr &&
      active_->layers_done + active_->layers_inflight >=
          deployment_.model.num_layers) {
    // Naive blocking merge: the host synchronizes on the prefill
    // completion event before building the next decode batch.
    decode_blocked_on_merge_ = true;
    tracer_.Instant("engine/decode", "blocked-on-merge",
                    static_cast<std::int64_t>(decode_iterations_),
                    static_cast<double>(decoding_.size()));
    return;
  }

  std::vector<std::int64_t> ctx;
  ctx.reserve(decoding_.size());
  for (const auto& request : decoding_) {
    ctx.push_back(request->spec->input_tokens + request->generated);
  }

  const bool prefill_pending =
      active_ != nullptr || preempted_ != nullptr || !waiting_.empty();
  PrefillDesc desc = ActivePrefillDesc();
  if (desc.new_tokens == 0 && prefill_pending && !waiting_.empty()) {
    desc.new_tokens = waiting_.front()->spec->input_tokens;
    desc.reused_tokens = waiting_.front()->spec->reused_tokens;
  }

  const int total = deployment_.gpu.sm_count;
  int decode_sms = dispatcher_->ChooseDecodeSms(ctx, prefill_pending, desc);
  if (options_.mux.mode == MultiplexEngine::Mode::kSpatial) {
    if (decode_sms >= total) {
      mux_->SetPartition(total, deployment_.gpu.partition_granularity);
    } else {
      mux_->SetPartition(decode_sms, total - decode_sms);
    }
  } else {
    decode_sms = total;
  }
  partition_trace_.push_back(PartitionSample{
      sim_->Now(), decode_sms,
      decode_sms >= total ? 0 : total - decode_sms, active_ != nullptr});

  const gpu::Kernel kernel = cost_->DecodeIteration(ctx);
  const sim::Duration solo = estimator_.PredictDecodeSolo(ctx, decode_sms);
  last_decode_estimate_ =
      prefill_pending ? estimator_.WorstCaseDecode(ctx, decode_sms, desc)
                      : solo;
  std::int64_t total_ctx = 0;
  for (std::int64_t c : ctx) total_ctx += c;
  const ContentionEstimator::CellKey cell = estimator_.CellFor(
      desc, ctx.size(), total_ctx / static_cast<std::int64_t>(ctx.size()),
      decode_sms);
  const bool had_cotenant =
      active_ != nullptr && active_->layers_inflight > 0;

  decode_in_flight_ = true;
  ++decode_iterations_;
  tracer_.SpanBegin("engine/decode", "decode-step",
                    static_cast<std::int64_t>(decode_iterations_),
                    static_cast<double>(ctx.size()));
  const sim::Time launch_time = sim_->Now();
  mux_->LaunchDecode(kernel, cost_->DecodeGraphLaunch(),
                     [this, launch_time, solo, cell, had_cotenant] {
                       OnDecodeIterationDone(launch_time, solo, cell,
                                             had_cotenant);
                     });
}

void MuxWiseEngine::OnDecodeIterationDone(sim::Time launch_time,
                                          sim::Duration solo,
                                          ContentionEstimator::CellKey cell,
                                          bool had_cotenant) {
  decode_in_flight_ = false;
  // Single decode iteration in flight: the live serial is the last one.
  tracer_.SpanEnd("engine/decode", "decode-step",
                  static_cast<std::int64_t>(decode_iterations_));
  const sim::Time now = sim_->Now();

  if (options_.online_refinement && had_cotenant && solo > 0) {
    const sim::Duration measured =
        now - launch_time - cost_->DecodeGraphLaunch();
    const double slowdown =
        static_cast<double>(measured) / static_cast<double>(solo);
    if (slowdown > 1.0) estimator_.ObserveDecode(cell, slowdown);
  }

  std::vector<std::unique_ptr<serve::Request>> still;
  still.reserve(decoding_.size());
  for (auto& request : decoding_) {
    request->EmitToken(now);
    if (request->DecodeFinished()) {
      FinishRequest(std::move(request));
    } else {
      still.push_back(std::move(request));
    }
  }
  decoding_ = std::move(still);
  tracer_.Counter("engine/decode", "decode-pending",
                  static_cast<double>(decoding_.size()));
  FlushCompletions();
  PumpScheduler();
}

void MuxWiseEngine::FinishRequest(std::unique_ptr<serve::Request> request) {
  request->phase = serve::Phase::kDone;
  request->completion = sim_->Now();
  request->outcome = serve::Outcome::kCompleted;
  serve::FinishInPool(*pool_, *request, sim_->Now());
  MUX_CHECK(in_flight_ > 0);
  --in_flight_;
  pending_completions_.push_back(std::move(request));
}

void MuxWiseEngine::InjectCrash(std::size_t domain) {
  if (domain != 0) return;
  MarkDown(0, true);
  BumpEpoch();
  mux_->Abort();  // Kills both green contexts and in-flight launches.
  decode_in_flight_ = false;
  decode_blocked_on_merge_ = false;
  preemptor_pending_ = false;
  last_decode_estimate_ = 0;

  // Everything admitted lost its KV, oldest first: the decode batch,
  // prefills awaiting merge, then the preempted and active batches.
  std::vector<std::unique_ptr<serve::Request>> lost;
  for (auto& request : decoding_) lost.push_back(std::move(request));
  decoding_.clear();
  for (auto& request : merge_ready_) lost.push_back(std::move(request));
  merge_ready_.clear();
  if (preempted_ != nullptr) {
    for (auto& request : preempted_->requests) {
      lost.push_back(std::move(request));
    }
    preempted_.reset();
  }
  if (active_ != nullptr) {
    for (auto& request : active_->requests) {
      lost.push_back(std::move(request));
    }
    active_.reset();
  }
  for (auto& request : lost) serve::AbandonInPool(*pool_, *request);
  pool_->Clear();

  std::vector<std::unique_ptr<serve::Request>> requeue;
  for (auto& request : lost) {
    if (!PrepareRetry(*request)) {
      MarkTerminal(*request, serve::Outcome::kFailed);
      MUX_CHECK(in_flight_ > 0);
      --in_flight_;
      pending_completions_.push_back(std::move(request));
    } else if (DeadlinePassed(*request)) {
      // Its deadline event fired while it was admitted; reap it now.
      MarkTerminal(*request, serve::Outcome::kTimedOut);
      MUX_CHECK(in_flight_ > 0);
      --in_flight_;
      pending_completions_.push_back(std::move(request));
    } else {
      waiting_demand_ += DemandTokens(*request);
      requeue.push_back(std::move(request));
    }
  }
  for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
    waiting_.push_front(std::move(*it));
  }
  FlushCompletions();
}

void MuxWiseEngine::InjectRecovery(std::size_t domain) {
  if (domain != 0) return;
  MarkDown(0, false);
  PumpScheduler();
}

void MuxWiseEngine::InjectStraggler(std::size_t domain, double slowdown) {
  if (domain != 0) return;
  mux_->device().SetSlowdown(slowdown);
}

void MuxWiseEngine::AttachTracer(obs::Tracer tracer) {
  fault::FaultAwareEngine::AttachTracer(tracer);
  mux_->AttachTracer(tracer);
  pool_->set_tracer(tracer, "kv");
}

void MuxWiseEngine::MaybePreemptFor(const serve::Request& incoming) {
  if (!options_.dispatch.preemption) return;
  if (active_ == nullptr || active_->is_preemptor || preempted_ != nullptr ||
      active_->pause_requested) {
    return;
  }
  const int prefill_sms = mux_->prefill_sms();
  const sim::Duration incoming_duration = estimator_.PredictPrefill(
      {llm::SeqWork{incoming.spec->input_tokens, incoming.spec->reused_tokens}},
      prefill_sms);
  const sim::Time incoming_deadline =
      incoming.arrival +
      deployment_.slo.TtftTargetFor(incoming.spec->input_tokens);
  if (dispatcher_->ShouldPreempt(
          sim_->Now(), ActivePrefillRemaining(), active_->is_preemptor,
          active_->earliest_deadline, incoming_duration, incoming_deadline)) {
    active_->pause_requested = true;
    preemptor_pending_ = true;
  }
}

void MuxWiseEngine::RegisterAudits(check::InvariantRegistry& registry) const {
  registry.Register(
      "MuxWiseEngine", "quiescent-scheduler",
      [this](check::AuditContext& ctx) {
        ctx.Check(in_flight_ == 0, std::to_string(in_flight_) +
                                       " requests still in flight");
        ctx.Check(waiting_.empty(), "waiting queue not drained");
        ctx.Check(active_ == nullptr, "prefill batch still active");
        ctx.Check(preempted_ == nullptr, "preempted batch never resumed");
        ctx.Check(merge_ready_.empty(), "merge-ready requests abandoned");
        ctx.Check(decoding_.empty(), "decode batch not drained");
        ctx.Check(pending_completions_.empty(),
                  "completions never handed back");
        ctx.Check(!decode_in_flight_, "decode iteration still outstanding");
        ctx.Check(waiting_demand_ == 0,
                  "queued-demand accounting leaked " +
                      std::to_string(waiting_demand_) + " tokens");
      });
  mux_->RegisterAudits(registry);
  pool_->RegisterAudits(registry);
}

}  // namespace muxwise::core
