#include "core/muxwise_engine.h"

#include <algorithm>
#include <utility>

#include "serve/admission.h"
#include "sim/logging.h"

namespace muxwise::core {

MuxWiseEngine::MuxWiseEngine(sim::Simulator* simulator,
                             const serve::Deployment& deployment,
                             ContentionEstimator estimator, Options options)
    : fault::FaultAwareEngine(simulator, deployment.slo, options.recovery),
      sim_(simulator),
      deployment_(deployment),
      options_(options),
      estimator_(std::move(estimator)) {
  mux_ = std::make_unique<MultiplexEngine>(sim_, deployment_, options_.mux);
  pool_ = std::make_unique<kv::KvPool>(deployment_.PoolTokens(
      deployment_.num_gpus,
      /*extra_graph_fraction=*/0.032));  // Per-partition decode graphs, §4.5.
  cost_ = std::make_unique<llm::CostModel>(deployment_.model,
                                           deployment_.num_gpus,
                                           deployment_.gpu);
  dispatcher_ = std::make_unique<SloAwareDispatcher>(deployment_, &estimator_,
                                                     options_.dispatch);
  ctl_ = std::make_unique<overload::Controller>(options_.overload);
  if (options_.overload.enabled) {
    host_link_ = std::make_unique<sim::Channel>(
        sim_, "muxwise/host-spill",
        options_.overload.spill_bandwidth_bytes_per_s,
        options_.overload.spill_latency);
    // Spills cross from this engine's one instance (shard 0) to the
    // host tier, which lives outside the shard partition.
    host_link_->AnnotateShards(0, sim::kNoShard);
  }
}

MuxWiseEngine::~MuxWiseEngine() = default;

const char* MuxWiseEngine::name() const {
  switch (options_.mux.mode) {
    case MultiplexEngine::Mode::kSpatial:
      return "MuxWise";
    case MultiplexEngine::Mode::kUnmanaged:
      return "WindServe*";
    case MultiplexEngine::Mode::kTemporal:
      return "Temporal*";
  }
  return "MuxWise";
}

void MuxWiseEngine::Enqueue(std::unique_ptr<serve::Request> request) {
  if (OverloadOn()) {
    EnqueueOverload(std::move(request));
    return;
  }
  if (FaultsEnabled()) {
    if (ShedNow(waiting_demand_ + DemandTokens(*request),
                pool_->capacity_tokens())) {
      MarkTerminal(*request, serve::Outcome::kShed);
      NotifyComplete(std::move(request));
      return;
    }
    request->deadline = DeadlineFor(*request);
    sim_->ScheduleAt(request->deadline,
                     [this, id = request->spec->id] { OnDeadline(id); });
    waiting_demand_ += DemandTokens(*request);
  }
  ++in_flight_;
  request->phase = serve::Phase::kQueued;
  const serve::Request& incoming = *request;
  waiting_.push_back(  // muxlint: allow(unbounded-queue) — legacy path;
                       // the overload controller bounds EnqueueOverload.
      std::move(request));
  MaybePreemptFor(incoming);
  PumpScheduler();
}

void MuxWiseEngine::EnqueueOverload(std::unique_ptr<serve::Request> request) {
  ObserveOverload();
  const workload::SloClass slo_class = request->spec->slo_class;
  const overload::AdmissionDecision decision =
      ctl_->Admit(slo_class, DemandTokens(*request), sim_->Now(),
                  QueuedInClass(slo_class));
  if (decision.action == overload::AdmissionDecision::Action::kShed) {
    MarkTerminal(*request, serve::Outcome::kShed);
    NotifyComplete(std::move(request));
    return;
  }
  ++in_flight_;
  request->phase = serve::Phase::kQueued;
  if (FaultsEnabled()) {
    // The class controller replaces the blunt demand cutoff, but the
    // SLO-derived deadline still reaps stale queued work.
    request->deadline = DeadlineFor(*request);
    sim_->ScheduleAt(request->deadline,
                     [this, id = request->spec->id] { OnDeadline(id); });
  }
  if (decision.action == overload::AdmissionDecision::Action::kDelay) {
    tracer_.Instant("engine/overload", "admission-delayed",
                    request->spec->id,
                    static_cast<double>(workload::SloClassRank(slo_class)));
    sim_->ScheduleAt(decision.retry_at, [this, id = request->spec->id] {
      OnAdmissionRetry(id);
    });
    gated_.push_back(  // muxlint: allow(unbounded-queue) — delayed
                       // admissions count toward the controller's
                       // per-class hard cap (QueuedInClass).
        std::move(request));
    queued_hwm_ = std::max(queued_hwm_, waiting_.size() + gated_.size());
    return;
  }
  AdmitToWaiting(std::move(request));
}

void MuxWiseEngine::AdmitToWaiting(std::unique_ptr<serve::Request> request) {
  if (FaultsEnabled()) waiting_demand_ += DemandTokens(*request);
  const serve::Request& incoming = *request;
  waiting_.push_back(  // muxlint: allow(unbounded-queue) — bounded by the
                       // controller's per-class hard cap (bounded-queues
                       // audit).
      std::move(request));
  queued_hwm_ = std::max(queued_hwm_, waiting_.size() + gated_.size());
  MaybePreemptFor(incoming);
  PumpScheduler();
}

void MuxWiseEngine::OnAdmissionRetry(std::int64_t id) {
  auto it = gated_.begin();
  while (it != gated_.end() && (*it)->spec->id != id) ++it;
  if (it == gated_.end()) return;  // Reaped by its deadline.
  auto request = std::move(*it);
  gated_.erase(it);

  ObserveOverload();
  const workload::SloClass slo_class = request->spec->slo_class;
  const sim::Time now = sim_->Now();
  const overload::AdmissionDecision decision =
      ctl_->Admit(slo_class, DemandTokens(*request), now,
                  QueuedInClass(slo_class));
  const bool overdue =
      now - request->arrival >= options_.overload.max_admission_delay;
  if (decision.action == overload::AdmissionDecision::Action::kShed ||
      (decision.action == overload::AdmissionDecision::Action::kDelay &&
       overdue)) {
    MarkTerminal(*request, serve::Outcome::kShed);
    MUX_CHECK(in_flight_ > 0);
    --in_flight_;
    NotifyComplete(std::move(request));
    return;
  }
  if (decision.action == overload::AdmissionDecision::Action::kDelay) {
    sim_->ScheduleAt(decision.retry_at,
                     [this, id] { OnAdmissionRetry(id); });
    gated_.push_back(  // muxlint: allow(unbounded-queue) — re-gates a
                       // request already inside the hard cap (net queue
                       // growth is zero).
        std::move(request));
    return;
  }
  AdmitToWaiting(std::move(request));
}

void MuxWiseEngine::ObserveOverload() {
  const double occupancy =
      static_cast<double>(pool_->used_tokens()) /
      static_cast<double>(pool_->capacity_tokens());
  sim::Duration queue_delay = 0;
  const sim::Time now = sim_->Now();
  for (const auto& request : waiting_) {
    queue_delay = std::max(queue_delay, now - request->arrival);
  }
  if (ctl_->Observe(now, occupancy, queue_delay)) {
    tracer_.Instant("engine/overload", "mode-change",
                    static_cast<std::int64_t>(ctl_->mode_transitions()),
                    static_cast<double>(static_cast<int>(ctl_->mode())));
  }
  if (tracer_.enabled()) {
    tracer_.Counter("engine/overload", "mode",
                    static_cast<double>(static_cast<int>(ctl_->mode())));
  }
}

std::size_t MuxWiseEngine::QueuedInClass(
    workload::SloClass slo_class) const {
  std::size_t count = 0;
  for (const auto& request : waiting_) {
    if (request->spec->slo_class == slo_class) ++count;
  }
  for (const auto& request : gated_) {
    if (request->spec->slo_class == slo_class) ++count;
  }
  return count;
}

void MuxWiseEngine::OnDeadline(std::int64_t id) {
  // Only waiting requests are reaped; admitted work runs to completion.
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    if ((*it)->spec->id != id) continue;
    auto request = std::move(*it);
    waiting_.erase(it);
    waiting_demand_ -= DemandTokens(*request);
    MarkTerminal(*request, serve::Outcome::kTimedOut);
    MUX_CHECK(in_flight_ > 0);
    --in_flight_;
    NotifyComplete(std::move(request));
    return;
  }
  // Admission-gated requests (overload control) are equally unstarted.
  for (auto it = gated_.begin(); it != gated_.end(); ++it) {
    if ((*it)->spec->id != id) continue;
    auto request = std::move(*it);
    gated_.erase(it);
    MarkTerminal(*request, serve::Outcome::kTimedOut);
    MUX_CHECK(in_flight_ > 0);
    --in_flight_;
    NotifyComplete(std::move(request));
    return;
  }
}

void MuxWiseEngine::PumpScheduler() {
  if (DomainDown(0)) return;
  if (OverloadOn()) {
    ObserveOverload();
    MaybeRestoreSpilled();
    MaybeKvPreempt();
  }
  if (active_ != nullptr && !waiting_.empty()) {
    // Scheduling-point preemption check against the shortest waiter.
    const serve::Request* shortest = waiting_.front().get();
    for (const auto& request : waiting_) {
      if (request->spec->input_tokens < shortest->spec->input_tokens) {
        shortest = request.get();
      }
    }
    MaybePreemptFor(*shortest);
  }
  // A pause requested between layer groups swaps immediately; with a
  // group in flight the swap waits for the group boundary
  // (OnPrefillGroupDone).
  if (active_ != nullptr && active_->pause_requested &&
      active_->layers_inflight == 0) {
    MUX_CHECK(preempted_ == nullptr);
    active_->pause_requested = false;
    preempted_ = std::move(active_);
    ++preemptions_;
  }
  TryStartPrefillBatch();
  MaybeLaunchDecode();  // Decode launches first (§3.2.2 priority).
  ContinuePrefill();
}

void MuxWiseEngine::TryStartPrefillBatch() {
  if (active_ != nullptr) return;
  if (preempted_ == nullptr) kv_preempt_pending_ = false;

  // A paused batch resumes once no preemptor is pending; only the batch
  // created for an approved preemption runs ahead of it (no recursive
  // preemption, and no starvation by later arrivals). A KV-pressure
  // pause instead holds the batch through exactly one formation pass,
  // so TryPreemptForKv can harvest victims from it below.
  if (preempted_ != nullptr && !preemptor_pending_) {
    if (!kv_preempt_pending_) {
      active_ = std::move(preempted_);
      active_->pause_requested = false;
      return;
    }
    kv_preempt_pending_ = false;
  }

  // Restored spill victims resume next: their KV is back in HBM and
  // their reservation is already charged, so holding them only wastes
  // the pool.
  if (!restored_.empty() && !preemptor_pending_) {
    active_ = std::move(restored_.front());
    restored_.pop_front();
    return;
  }

  const std::size_t running = decoding_.size() + merge_ready_.size();
  if (running >= static_cast<std::size_t>(options_.max_decode_batch)) return;
  if (waiting_.empty()) {
    if (preempted_ != nullptr) {
      // The would-be preemptor vanished: resume the paused batch.
      preemptor_pending_ = false;
      active_ = std::move(preempted_);
      active_->pause_requested = false;
    }
    return;
  }

  auto job = std::make_unique<PrefillJob>();
  const bool building_preemptor = preemptor_pending_;
  if (building_preemptor) {
    // Short requests preempt long ones (§3.4.2): pull the smallest
    // prefills to the front of the queue for the preemptor batch.
    std::stable_sort(waiting_.begin(), waiting_.end(),
                     [](const std::unique_ptr<serve::Request>& a,
                        const std::unique_ptr<serve::Request>& b) {
                       return a->spec->input_tokens - a->cached_tokens <
                              b->spec->input_tokens - b->cached_tokens;
                     });
  } else if (OverloadOn()) {
    // Class priority: interactive heads form batches before standard,
    // standard before batch; FIFO within a class (stable sort).
    std::stable_sort(waiting_.begin(), waiting_.end(),
                     [](const std::unique_ptr<serve::Request>& a,
                        const std::unique_ptr<serve::Request>& b) {
                       return workload::SloClassRank(a->spec->slo_class) <
                              workload::SloClassRank(b->spec->slo_class);
                     });
  }
  // Brownout shrinks the prefill token budget before anything is shed.
  std::int64_t token_budget = options_.prefill_batch_tokens;
  if (OverloadOn()) {
    token_budget = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(static_cast<double>(token_budget) *
                                     ctl_->PrefillScale()));
  }
  // With every admitted population empty, deferral would deadlock the
  // queue — an idle engine admits batch work regardless of mode.
  const bool engine_idle = decoding_.empty() && merge_ready_.empty() &&
                           !decode_in_flight_ && preempted_ == nullptr &&
                           spilled_.empty() && restored_.empty();
  int kv_victims = 0;
  std::int64_t batch_tokens = 0;
  while (!waiting_.empty() &&
         static_cast<int>(job->requests.size()) <
             options_.prefill_batch_requests &&
         batch_tokens < token_budget &&
         running + job->requests.size() <
             static_cast<std::size_t>(options_.max_decode_batch)) {
    serve::Request& head = *waiting_.front();
    if (OverloadOn() && !building_preemptor &&
        head.spec->slo_class == workload::SloClass::kBatch &&
        ctl_->DeferBatch() && !(job->requests.empty() && engine_idle)) {
      // Brownout defers batch-class admissions; the class sort above
      // groups batch at the tail, so nothing behind it is starved.
      break;
    }
    if (!serve::AdmitToPool(*pool_, head, sim_->Now())) {
      if (OverloadOn() && ctl_->PreemptionEligible() &&
          kv_victims < options_.overload.max_victims_per_pump &&
          TryPreemptForKv(head)) {
        ++kv_victims;
        continue;  // Space was freed; re-offer the same head.
      }
      break;
    }
    head.phase = serve::Phase::kPrefill;
    head.prefill_start = sim_->Now();
    if (FaultsEnabled()) waiting_demand_ -= DemandTokens(head);
    job->work.push_back(
        llm::SeqWork{head.prefill_tokens, head.cached_tokens});
    job->new_tokens += head.prefill_tokens;
    job->reused_tokens += head.cached_tokens;
    batch_tokens += head.prefill_tokens;
    job->earliest_deadline = std::min(
        job->earliest_deadline,
        head.arrival + deployment_.slo.TtftTargetFor(head.spec->input_tokens));
    job->requests.push_back(std::move(waiting_.front()));
    waiting_.pop_front();
  }
  if (job->requests.empty()) {
    if (preempted_ != nullptr) {
      // Pool pressure blocked the preemptor: resume rather than stall.
      preemptor_pending_ = false;
      active_ = std::move(preempted_);
      active_->pause_requested = false;
    }
    return;
  }
  job->is_preemptor = preemptor_pending_;
  preemptor_pending_ = false;
  active_ = std::move(job);
}

PrefillDesc MuxWiseEngine::ActivePrefillDesc() const {
  if (active_ == nullptr) return PrefillDesc{};
  return PrefillDesc{active_->new_tokens, active_->reused_tokens};
}

sim::Duration MuxWiseEngine::ActivePrefillRemaining() const {
  if (active_ == nullptr) return 0;
  const int total_layers = deployment_.model.num_layers;
  const int remaining = total_layers - active_->layers_done;
  const sim::Duration phase =
      estimator_.PredictPrefill(active_->work, mux_->prefill_sms());
  return static_cast<sim::Duration>(
      static_cast<double>(phase) * remaining / total_layers);
}

void MuxWiseEngine::ContinuePrefill() {
  if (active_ == nullptr || active_->layers_inflight > 0) return;
  if (active_->pause_requested) return;  // Swap happens at group end.
  const int total_layers = deployment_.model.num_layers;
  const int remaining = total_layers - active_->layers_done;
  MUX_CHECK(remaining > 0);

  const bool decode_live = decode_in_flight_ || !decoding_.empty();
  int prefill_sms = mux_->prefill_sms();
  if (!decode_live && options_.mux.mode == MultiplexEngine::Mode::kSpatial) {
    // Decode terminated (paper Fig. 9, bubble type 2): move the later
    // prefill layers into a full-device green context.
    mux_->SetPartition(deployment_.gpu.partition_granularity,
                       deployment_.gpu.sm_count);
    prefill_sms = deployment_.gpu.sm_count;
  }
  if (options_.mux.mode != MultiplexEngine::Mode::kSpatial) {
    prefill_sms = deployment_.gpu.sm_count;
  }

  int layers = remaining;
  if (options_.layerwise) {
    if (options_.mux.mode == MultiplexEngine::Mode::kTemporal) {
      // Fit layer groups into the decode slack (Tropical-style).
      const sim::Duration slack =
          deployment_.slo.tbt - last_decode_estimate_ -
          dispatcher_->options().tbt_margin;
      const sim::Duration phase =
          estimator_.PredictPrefill(active_->work, prefill_sms);
      if (decode_live && phase > 0) {
        const double fit = static_cast<double>(std::max<sim::Duration>(
                               0, slack)) *
                           total_layers / static_cast<double>(phase);
        layers = std::clamp(static_cast<int>(fit), 1, remaining);
      } else {
        layers = std::min(remaining, dispatcher_->options().idle_layer_group);
      }
    } else {
      layers = decode_live
                   ? dispatcher_->PrefillLayersToLaunch(
                         last_decode_estimate_, active_->work, prefill_sms,
                         remaining)
                   : std::min(remaining,
                              dispatcher_->options().idle_layer_group);
    }
  }

  gpu::Kernel kernel = cost_->PrefillLayers(active_->work, layers);
  const sim::Duration launch_cost = cost_->PrefillLayerLaunch() * layers;
  active_->layers_inflight = layers;
  ++prefill_group_serial_;
  tracer_.SpanBegin("engine/prefill", "prefill-chunk",
                    static_cast<std::int64_t>(prefill_group_serial_),
                    static_cast<double>(layers));
  mux_->LaunchPrefillGroup(kernel, launch_cost,
                           [this, layers] { OnPrefillGroupDone(layers); });
}

void MuxWiseEngine::OnPrefillGroupDone(int layers) {
  MUX_CHECK(active_ != nullptr);
  // One group in flight at a time, so the live serial is the last one.
  tracer_.SpanEnd("engine/prefill", "prefill-chunk",
                  static_cast<std::int64_t>(prefill_group_serial_));
  active_->layers_done += layers;
  active_->layers_inflight = 0;

  if (active_->layers_done >= deployment_.model.num_layers) {
    CompleteActivePrefill();
  } else if (active_->pause_requested) {
    MUX_CHECK(preempted_ == nullptr);
    active_->pause_requested = false;
    preempted_ = std::move(active_);
    ++preemptions_;
  }
  FlushCompletions();
  PumpScheduler();
}

void MuxWiseEngine::FlushCompletions() {
  while (!pending_completions_.empty()) {
    auto request = std::move(pending_completions_.back());
    pending_completions_.pop_back();
    NotifyComplete(std::move(request));
  }
}

void MuxWiseEngine::CompleteActivePrefill() {
  const sim::Time now = sim_->Now();
  auto job = std::move(active_);
  for (auto& request : job->requests) {
    request->EmitToken(now);  // First token.
    if (request->DecodeFinished()) {
      FinishRequest(std::move(request));
    } else {
      request->phase = serve::Phase::kDecode;
      merge_ready_.push_back(std::move(request));
    }
  }
  if (preempted_ != nullptr) {
    active_ = std::move(preempted_);
    active_->pause_requested = false;
  }
  // The merge is observed via query-based synchronization; without it
  // the decode loop was blocked waiting for exactly this completion.
  decode_blocked_on_merge_ = false;
}

void MuxWiseEngine::MaybeLaunchDecode() {
  if (decode_in_flight_) return;

  // Query-based synchronization: completed prefills merge into the
  // decode batch at iteration-construction time (paper §3.2.3).
  for (auto& request : merge_ready_) {
    decoding_.push_back(std::move(request));
  }
  merge_ready_.clear();

  if (decoding_.empty()) return;

  if (!options_.query_sync && active_ != nullptr &&
      active_->layers_done + active_->layers_inflight >=
          deployment_.model.num_layers) {
    // Naive blocking merge: the host synchronizes on the prefill
    // completion event before building the next decode batch.
    decode_blocked_on_merge_ = true;
    tracer_.Instant("engine/decode", "blocked-on-merge",
                    static_cast<std::int64_t>(decode_iterations_),
                    static_cast<double>(decoding_.size()));
    return;
  }

  std::vector<std::int64_t> ctx;
  ctx.reserve(decoding_.size());
  for (const auto& request : decoding_) {
    ctx.push_back(request->spec->input_tokens + request->generated);
  }

  const bool prefill_pending = active_ != nullptr ||
                               preempted_ != nullptr || !waiting_.empty() ||
                               !restored_.empty() || !spilled_.empty();
  PrefillDesc desc = ActivePrefillDesc();
  if (desc.new_tokens == 0 && prefill_pending && !waiting_.empty()) {
    desc.new_tokens = waiting_.front()->spec->input_tokens;
    desc.reused_tokens = waiting_.front()->spec->reused_tokens;
  }

  const int total = deployment_.gpu.sm_count;
  int decode_sms = dispatcher_->ChooseDecodeSms(ctx, prefill_pending, desc);
  if (options_.mux.mode == MultiplexEngine::Mode::kSpatial) {
    if (decode_sms >= total) {
      mux_->SetPartition(total, deployment_.gpu.partition_granularity);
    } else {
      mux_->SetPartition(decode_sms, total - decode_sms);
    }
  } else {
    decode_sms = total;
  }
  if (partition_trace_capacity_ == 0 ||
      partition_trace_.size() < partition_trace_capacity_) {
    partition_trace_.push_back(PartitionSample{
        sim_->Now(), decode_sms,
        decode_sms >= total ? 0 : total - decode_sms, active_ != nullptr});
  } else {
    ++partition_samples_dropped_;
  }

  const gpu::Kernel kernel = cost_->DecodeIteration(ctx);
  const sim::Duration solo = estimator_.PredictDecodeSolo(ctx, decode_sms);
  last_decode_estimate_ =
      prefill_pending ? estimator_.WorstCaseDecode(ctx, decode_sms, desc)
                      : solo;
  std::int64_t total_ctx = 0;
  for (std::int64_t c : ctx) total_ctx += c;
  const ContentionEstimator::CellKey cell = estimator_.CellFor(
      desc, ctx.size(), total_ctx / static_cast<std::int64_t>(ctx.size()),
      decode_sms);
  const bool had_cotenant =
      active_ != nullptr && active_->layers_inflight > 0;

  decode_in_flight_ = true;
  ++decode_iterations_;
  tracer_.SpanBegin("engine/decode", "decode-step",
                    static_cast<std::int64_t>(decode_iterations_),
                    static_cast<double>(ctx.size()));
  const sim::Time launch_time = sim_->Now();
  mux_->LaunchDecode(kernel, cost_->DecodeGraphLaunch(),
                     [this, launch_time, solo, cell, had_cotenant] {
                       OnDecodeIterationDone(launch_time, solo, cell,
                                             had_cotenant);
                     });
}

void MuxWiseEngine::OnDecodeIterationDone(sim::Time launch_time,
                                          sim::Duration solo,
                                          ContentionEstimator::CellKey cell,
                                          bool had_cotenant) {
  decode_in_flight_ = false;
  // Single decode iteration in flight: the live serial is the last one.
  tracer_.SpanEnd("engine/decode", "decode-step",
                  static_cast<std::int64_t>(decode_iterations_));
  const sim::Time now = sim_->Now();

  if (options_.online_refinement && had_cotenant && solo > 0) {
    const sim::Duration measured =
        now - launch_time - cost_->DecodeGraphLaunch();
    const double slowdown =
        static_cast<double>(measured) / static_cast<double>(solo);
    if (slowdown > 1.0) estimator_.ObserveDecode(cell, slowdown);
  }

  std::vector<std::unique_ptr<serve::Request>> still;
  still.reserve(decoding_.size());
  for (auto& request : decoding_) {
    request->EmitToken(now);
    if (request->DecodeFinished()) {
      FinishRequest(std::move(request));
    } else {
      still.push_back(std::move(request));
    }
  }
  decoding_ = std::move(still);
  tracer_.Counter("engine/decode", "decode-pending",
                  static_cast<double>(decoding_.size()));
  FlushCompletions();
  PumpScheduler();
}

void MuxWiseEngine::FinishRequest(std::unique_ptr<serve::Request> request) {
  request->phase = serve::Phase::kDone;
  request->completion = sim_->Now();
  request->outcome = serve::Outcome::kCompleted;
  serve::FinishInPool(*pool_, *request, sim_->Now());
  MUX_CHECK(in_flight_ > 0);
  --in_flight_;
  pending_completions_.push_back(  // muxlint: allow(unbounded-queue) —
                                   // drained by FlushCompletions before
                                   // the event returns (bounded by
                                   // in_flight_).
      std::move(request));
}

void MuxWiseEngine::InjectCrash(std::size_t domain) {
  if (domain != 0) return;
  MarkDown(0, true);
  BumpEpoch();
  mux_->Abort();  // Kills both green contexts and in-flight launches.
  decode_in_flight_ = false;
  decode_blocked_on_merge_ = false;
  preemptor_pending_ = false;
  kv_preempt_pending_ = false;
  last_decode_estimate_ = 0;

  // Everything admitted lost its KV, oldest first: the decode batch,
  // prefills awaiting merge, then the preempted and active batches.
  std::vector<std::unique_ptr<serve::Request>> lost;
  for (auto& request : decoding_) lost.push_back(std::move(request));
  decoding_.clear();
  for (auto& request : merge_ready_) lost.push_back(std::move(request));
  merge_ready_.clear();
  if (preempted_ != nullptr) {
    for (auto& request : preempted_->requests) {
      lost.push_back(std::move(request));
    }
    preempted_.reset();
  }
  if (active_ != nullptr) {
    for (auto& request : active_->requests) {
      lost.push_back(std::move(request));
    }
    active_.reset();
  }
  // Overload-control populations: restored-but-unresumed jobs hold HBM
  // reservations like any batch; spilled requests surrender their
  // ledger share (host copies are useless once the pool is dropped —
  // the partial KV's prefix context died with the instance).
  for (auto& job : restored_) {
    for (auto& request : job->requests) lost.push_back(std::move(request));
  }
  restored_.clear();
  for (auto& entry : spilled_) {
    if (!entry.restoring) pool_->DropSpilled(entry.tokens);
    // Restoring entries moved their tokens back into the reservation
    // already; AbandonInPool below returns those.
    lost.push_back(std::move(entry.request));
  }
  spilled_.clear();
  restore_in_flight_ = false;
  for (auto& request : lost) serve::AbandonInPool(*pool_, *request);
  pool_->Clear();

  std::vector<std::unique_ptr<serve::Request>> requeue;
  for (auto& request : lost) {
    if (!PrepareRetry(*request)) {
      MarkTerminal(*request, serve::Outcome::kFailed);
      MUX_CHECK(in_flight_ > 0);
      --in_flight_;
      pending_completions_.push_back(  // muxlint: allow(unbounded-queue)
                                       // — drained by FlushCompletions
                                       // below (bounded by in_flight_).
          std::move(request));
    } else if (DeadlinePassed(*request)) {
      // Its deadline event fired while it was admitted; reap it now.
      MarkTerminal(*request, serve::Outcome::kTimedOut);
      MUX_CHECK(in_flight_ > 0);
      --in_flight_;
      pending_completions_.push_back(  // muxlint: allow(unbounded-queue)
                                       // — drained by FlushCompletions
                                       // below (bounded by in_flight_).
          std::move(request));
    } else {
      waiting_demand_ += DemandTokens(*request);
      requeue.push_back(std::move(request));
    }
  }
  for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
    waiting_.push_front(  // muxlint: allow(unbounded-queue) — crash
                          // recovery re-queues already-admitted work
                          // (net queue growth is zero).
        std::move(*it));
  }
  FlushCompletions();
}

std::vector<std::unique_ptr<serve::Request>>
MuxWiseEngine::ExtractForRehoming() {
  std::vector<std::unique_ptr<serve::Request>> extracted;
  extracted.reserve(waiting_.size() + gated_.size());
  for (auto& request : waiting_) {
    if (FaultsEnabled()) waiting_demand_ -= DemandTokens(*request);
    MUX_CHECK(in_flight_ > 0);
    --in_flight_;
    request->phase = serve::Phase::kQueued;
    extracted.push_back(std::move(request));
  }
  waiting_.clear();
  // Gated arrivals never entered waiting_demand_ (the class controller
  // bounds them instead), so only the in-flight count is returned.
  for (auto& request : gated_) {
    MUX_CHECK(in_flight_ > 0);
    --in_flight_;
    request->phase = serve::Phase::kQueued;
    extracted.push_back(std::move(request));
  }
  gated_.clear();
  return extracted;
}

void MuxWiseEngine::WarmCachePrefix(const kv::TokenSeq& prefix) {
  pool_->CommitSequence(prefix, sim_->Now());
}

void MuxWiseEngine::InjectRecovery(std::size_t domain) {
  if (domain != 0) return;
  MarkDown(0, false);
  PumpScheduler();
}

void MuxWiseEngine::InjectStraggler(std::size_t domain, double slowdown) {
  if (domain != 0) return;
  mux_->device().SetSlowdown(slowdown);
}

void MuxWiseEngine::InjectZombie(std::size_t domain, bool frozen) {
  if (domain != 0) return;
  mux_->device().SetFrozen(frozen);
}

void MuxWiseEngine::InjectDegrade(std::size_t domain, double flops_factor,
                                  double bandwidth_factor) {
  if (domain != 0) return;
  mux_->device().SetDegrade(flops_factor, bandwidth_factor);
}

std::uint64_t MuxWiseEngine::ProgressWatermark() const {
  return static_cast<std::uint64_t>(mux_->device().kernels_completed());
}

void MuxWiseEngine::AttachTracer(obs::Tracer tracer) {
  fault::FaultAwareEngine::AttachTracer(tracer);
  mux_->AttachTracer(tracer);
  pool_->set_tracer(tracer, "kv");
}

void MuxWiseEngine::MaybeKvPreempt() {
  if (!ctl_->PreemptionEligible()) return;
  if (active_ == nullptr || active_->pause_requested ||
      active_->is_preemptor) {
    return;
  }
  if (preempted_ != nullptr || preemptor_pending_ || kv_preempt_pending_) {
    return;
  }
  if (waiting_.empty()) return;

  // The beneficiary is the best-class waiting request (FIFO among
  // equals, matching the class sort in TryStartPrefillBatch).
  const serve::Request* head = waiting_.front().get();
  for (const auto& request : waiting_) {
    if (workload::SloClassRank(request->spec->slo_class) <
        workload::SloClassRank(head->spec->slo_class)) {
      head = request.get();
    }
  }
  const int head_rank = workload::SloClassRank(head->spec->slo_class);
  const std::int64_t demand =
      head->spec->input_tokens + head->spec->output_tokens;
  // Cached tokens are reclaimable (prefix eviction), so pressure means
  // even evicting the whole cache would not fit the head.
  if (pool_->free_tokens() + pool_->cached_tokens() >= demand) return;

  // Pause only pays off when the batch carries strictly lower-class
  // prefill work TryPreemptForKv could evict for `head`.
  bool has_victim = false;
  for (const auto& candidate : active_->requests) {
    if (candidate->phase == serve::Phase::kPrefill &&
        workload::SloClassRank(candidate->spec->slo_class) > head_rank) {
      has_victim = true;
      break;
    }
  }
  if (!has_victim) return;

  active_->pause_requested = true;
  kv_preempt_pending_ = true;
  tracer_.Instant("engine/overload", "kv-preempt-pause", head->spec->id,
                  static_cast<double>(demand));
}

bool MuxWiseEngine::TryPreemptForKv(const serve::Request& head) {
  // Victims come from a paused prefill batch at a layer-group boundary;
  // requests holding decode state are never candidates (decode-safe
  // rule, enforced by the phase check and the decode_victims_ audit).
  PrefillJob* job = nullptr;
  if (preempted_ != nullptr && preempted_->layers_inflight == 0) {
    job = preempted_.get();
  }
  if (job == nullptr) return false;
  const int head_rank = workload::SloClassRank(head.spec->slo_class);
  const int total_layers = deployment_.model.num_layers;
  const int prefill_sms = mux_->prefill_sms();

  int best = -1;
  overload::VictimKey best_key;
  for (std::size_t i = 0; i < job->requests.size(); ++i) {
    const serve::Request& candidate = *job->requests[i];
    if (candidate.phase != serve::Phase::kPrefill) {
      ++decode_victims_;  // Would be decode-unsafe; the audit fails.
      continue;
    }
    // Only strictly lower-priority work is evicted for `head`.
    if (workload::SloClassRank(candidate.spec->slo_class) <= head_rank) {
      continue;
    }
    const double fraction =
        static_cast<double>(job->layers_done) / total_layers;
    overload::VictimKey key;
    key.slo_class = candidate.spec->slo_class;
    key.progress_layers = job->layers_done;
    key.recompute_seconds =
        sim::ToSeconds(estimator_.PredictPrefill({job->work[i]},
                                                 prefill_sms)) *
        fraction;
    key.request_id = candidate.spec->id;
    if (best < 0 || overload::PreemptBefore(key, best_key)) {
      best = static_cast<int>(i);
      best_key = key;
    }
  }
  if (best < 0) return false;

  auto victim = std::move(job->requests[best]);
  job->requests.erase(job->requests.begin() + best);
  job->work.erase(job->work.begin() + best);
  job->new_tokens -= victim->prefill_tokens;
  job->reused_tokens -= victim->cached_tokens;
  job->earliest_deadline = sim::kTimeNever;
  for (const auto& rest : job->requests) {
    job->earliest_deadline =
        std::min(job->earliest_deadline,
                 rest->arrival + deployment_.slo.TtftTargetFor(
                                     rest->spec->input_tokens));
  }
  if (job->requests.empty()) preempted_.reset();

  const int layers_done = static_cast<int>(best_key.progress_layers);
  const double fraction =
      static_cast<double>(layers_done) / total_layers;
  const double bytes = deployment_.model.KvBytesPerToken() *
                       static_cast<double>(victim->cached_tokens +
                                           victim->prefill_tokens) *
                       fraction;
  const std::int64_t id = victim->spec->id;

  if (layers_done > 0 &&
      ctl_->SpillCheaper(bytes, best_key.recompute_seconds)) {
    // Spill: the partial KV crosses the host link and the HBM pages
    // are freed immediately; the ledger keeps the pages owned.
    const std::int64_t tokens = victim->reserved_tokens;
    pool_->SpillReserved(tokens);
    victim->reserved_tokens = 0;
    victim->progress = layers_done;
    ++kv_spills_;
    tracer_.Instant("engine/overload", "kv-spill", id, fraction);
    SpilledEntry entry;
    entry.tokens = tokens;
    entry.layers_done = layers_done;
    entry.bytes = bytes;
    entry.request = std::move(victim);
    spilled_.push_back(std::move(entry));
    host_link_->Send<std::int64_t>(
        bytes, id, [this, e = epoch()](std::int64_t spilled_id) {
          if (e != epoch()) return;
          OnSpillOutDone(spilled_id);
        });
  } else {
    // Recompute: cheaper (or nothing computed yet) — drop the partial
    // KV and requeue the victim behind its class.
    serve::AbandonInPool(*pool_, *victim);
    victim->phase = serve::Phase::kQueued;
    victim->cached_tokens = 0;
    victim->prefill_tokens = 0;
    victim->progress = 0;
    ++kv_recomputes_;
    tracer_.Instant("engine/overload", "kv-recompute", id, fraction);
    if (FaultsEnabled()) waiting_demand_ += DemandTokens(*victim);
    waiting_.push_back(  // muxlint: allow(unbounded-queue) — re-queues
                         // an already-admitted request (net queue
                         // growth is zero).
        std::move(victim));
  }
  return true;
}

void MuxWiseEngine::OnSpillOutDone(std::int64_t id) {
  for (auto& entry : spilled_) {
    if (entry.request->spec->id != id) continue;
    entry.out_done = true;
    PumpScheduler();
    return;
  }
}

void MuxWiseEngine::MaybeRestoreSpilled() {
  if (restore_in_flight_ || spilled_.empty()) return;
  // Restore when pressure has eased, or unconditionally once nothing
  // else is runnable (the drain path — spilled work must finish).
  const bool drain = waiting_.empty() && gated_.empty() &&
                     active_ == nullptr && preempted_ == nullptr &&
                     restored_.empty();
  if (!ctl_->RestoreEligible() && !drain) return;

  int best = -1;
  for (std::size_t i = 0; i < spilled_.size(); ++i) {
    const SpilledEntry& entry = spilled_[i];
    if (!entry.out_done || entry.restoring) continue;
    if (best < 0) {
      best = static_cast<int>(i);
      continue;
    }
    const SpilledEntry& leader = spilled_[best];
    const int rank_e =
        workload::SloClassRank(entry.request->spec->slo_class);
    const int rank_l =
        workload::SloClassRank(leader.request->spec->slo_class);
    if (rank_e < rank_l ||
        (rank_e == rank_l &&
         entry.request->spec->id < leader.request->spec->id)) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return;
  SpilledEntry& entry = spilled_[best];
  if (!pool_->TryRestoreSpilled(entry.tokens)) return;  // No HBM yet.
  entry.request->reserved_tokens = entry.tokens;
  entry.restoring = true;
  restore_in_flight_ = true;
  const std::int64_t id = entry.request->spec->id;
  host_link_->Send<std::int64_t>(
      entry.bytes, id, [this, e = epoch()](std::int64_t restored_id) {
        if (e != epoch()) return;
        OnRestoreDone(restored_id);
      });
}

void MuxWiseEngine::OnRestoreDone(std::int64_t id) {
  restore_in_flight_ = false;
  for (auto it = spilled_.begin(); it != spilled_.end(); ++it) {
    if (it->request->spec->id != id) continue;
    SpilledEntry entry = std::move(*it);
    spilled_.erase(it);
    auto victim = std::move(entry.request);
    ++kv_restores_;
    tracer_.Instant("engine/overload", "kv-restore", id,
                    static_cast<double>(entry.layers_done));
    auto job = std::make_unique<PrefillJob>();
    job->work.push_back(
        llm::SeqWork{victim->prefill_tokens, victim->cached_tokens});
    job->new_tokens = victim->prefill_tokens;
    job->reused_tokens = victim->cached_tokens;
    job->layers_done = entry.layers_done;
    job->earliest_deadline =
        victim->arrival +
        deployment_.slo.TtftTargetFor(victim->spec->input_tokens);
    job->requests.push_back(std::move(victim));
    restored_.push_back(std::move(job));
    PumpScheduler();
    return;
  }
}

void MuxWiseEngine::MaybePreemptFor(const serve::Request& incoming) {
  if (!options_.dispatch.preemption) return;
  if (active_ == nullptr || active_->is_preemptor || preempted_ != nullptr ||
      active_->pause_requested) {
    return;
  }
  const int prefill_sms = mux_->prefill_sms();
  const sim::Duration incoming_duration = estimator_.PredictPrefill(
      {llm::SeqWork{incoming.spec->input_tokens, incoming.spec->reused_tokens}},
      prefill_sms);
  const sim::Time incoming_deadline =
      incoming.arrival +
      deployment_.slo.TtftTargetFor(incoming.spec->input_tokens);
  if (dispatcher_->ShouldPreempt(
          sim_->Now(), ActivePrefillRemaining(), active_->is_preemptor,
          active_->earliest_deadline, incoming_duration, incoming_deadline)) {
    active_->pause_requested = true;
    preemptor_pending_ = true;
  }
}

void MuxWiseEngine::RegisterAudits(check::InvariantRegistry& registry) const {
  registry.Register(
      "MuxWiseEngine", "quiescent-scheduler",
      [this](check::AuditContext& ctx) {
        ctx.Check(in_flight_ == 0, std::to_string(in_flight_) +
                                       " requests still in flight");
        ctx.Check(waiting_.empty(), "waiting queue not drained");
        ctx.Check(active_ == nullptr, "prefill batch still active");
        ctx.Check(preempted_ == nullptr, "preempted batch never resumed");
        ctx.Check(merge_ready_.empty(), "merge-ready requests abandoned");
        ctx.Check(decoding_.empty(), "decode batch not drained");
        ctx.Check(pending_completions_.empty(),
                  "completions never handed back");
        ctx.Check(!decode_in_flight_, "decode iteration still outstanding");
        ctx.Check(waiting_demand_ == 0,
                  "queued-demand accounting leaked " +
                      std::to_string(waiting_demand_) + " tokens");
        ctx.Check(gated_.empty(), "admission-gated requests leaked");
        ctx.Check(spilled_.empty(), "spilled requests never restored");
        ctx.Check(restored_.empty(), "restored jobs never resumed");
        ctx.Check(!restore_in_flight_,
                  "restore transfer still outstanding");
        ctx.Check(!kv_preempt_pending_,
                  "KV-pressure pause never consumed");
      });
  registry.Register(
      "MuxWiseEngine", "decode-safe-preemption",
      [this](check::AuditContext& ctx) {
        ctx.Check(decode_victims_ == 0,
                  std::to_string(decode_victims_) +
                      " decode-holding requests were offered as "
                      "preemption victims");
      });
  registry.Register(
      "MuxWiseEngine", "bounded-queues", [this](check::AuditContext& ctx) {
        if (!OverloadOn()) return;
        const std::size_t bound =
            static_cast<std::size_t>(workload::kNumSloClasses) *
            options_.overload.max_queue_per_class;
        ctx.Check(queued_hwm_ <= bound,
                  "pending queues reached " + std::to_string(queued_hwm_) +
                      " under backpressure (bound " +
                      std::to_string(bound) + ")");
      });
  mux_->RegisterAudits(registry);
  pool_->RegisterAudits(registry);
}

}  // namespace muxwise::core
