#ifndef MUXWISE_CORE_DISPATCHER_H_
#define MUXWISE_CORE_DISPATCHER_H_

#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "llm/cost_model.h"
#include "serve/deployment.h"
#include "sim/time.h"

namespace muxwise::core {

/**
 * The SLO-aware dispatcher (paper §3.4): pure decision logic, shared by
 * the serving engine and testable in isolation.
 *
 * Policy: decode SLO attainment is prioritized — the smallest SM
 * partition whose worst-case decode estimate meets the TBT target is
 * reserved for decode and everything else goes to prefill, which is
 * processed as early as possible (its SLO is expected, not guaranteed,
 * §3.4.1). Prefill is issued in layer groups sized so the launched
 * layers outlast the concurrent decode iteration (N_PL formula), and
 * short prefills may preempt long ones when the wait would break their
 * TTFT while the long prefill can still make its own.
 */
class SloAwareDispatcher {
 public:
  struct Options {
    bool preemption = true;

    /** Headroom subtracted from the TBT target (launch overheads). */
    sim::Duration tbt_margin = sim::Milliseconds(2);

    /** Layer-group size when no decode constrains pacing. */
    int idle_layer_group = 8;
  };

  SloAwareDispatcher(const serve::Deployment& deployment,
                     const ContentionEstimator* estimator, Options options);

  /**
   * Best-fit SM reservation for the decode batch (paper Fig. 12):
   * smallest partition option whose worst-case latency meets the TBT
   * target minus margin. Returns the full device when no prefill is
   * pending, and the largest option (accepting risk, which online
   * refinement will observe) when none fits.
   */
  int ChooseDecodeSms(const std::vector<std::int64_t>& decode_ctx,
                      bool prefill_pending, const PrefillDesc& prefill) const;

  /**
   * N_PL = ceil(T_d * N_T / T_P): the number of prefill layers to
   * launch so their execution covers one decode iteration (paper
   * §3.4.2). Clamped to [1, layers_remaining].
   */
  int PrefillLayersToLaunch(sim::Duration decode_estimate,
                            const std::vector<llm::SeqWork>& prefill_batch,
                            int prefill_sms, int layers_remaining) const;

  /**
   * Preemption test (paper §3.4.2): the incoming batch may preempt the
   * active one iff preemption is enabled, the active batch is not
   * itself a preemptor (no recursion), waiting would break the
   * incoming (length-scaled) TTFT deadline, preempting meets it, and
   * the active batch still meets its own deadline after resuming.
   */
  bool ShouldPreempt(sim::Time now, sim::Duration active_remaining,
                     bool active_is_preemptor, sim::Time active_deadline,
                     sim::Duration incoming_duration,
                     sim::Time incoming_deadline) const;

  const Options& options() const { return options_; }

 private:
  serve::Deployment deployment_;
  const ContentionEstimator* estimator_;
  Options options_;
  std::vector<int> partition_options_;
};

}  // namespace muxwise::core

#endif  // MUXWISE_CORE_DISPATCHER_H_
