#include "core/multiplex_engine.h"

#include <utility>

#include "sim/logging.h"

namespace muxwise::core {

MultiplexEngine::MultiplexEngine(sim::Simulator* simulator,
                                 const serve::Deployment& deployment,
                                 Options options)
    : sim_(simulator), deployment_(deployment), options_(options) {
  device_ = std::make_unique<gpu::Gpu>(sim_, deployment_.gpu);
  host_ = std::make_unique<gpu::HostThread>(sim_);
  const int total = deployment_.gpu.sm_count;
  // Initial split; the dispatcher reconfigures before the first launch.
  decode_sms_ = total / 2 / deployment_.gpu.partition_granularity *
                deployment_.gpu.partition_granularity;
  if (decode_sms_ == 0) decode_sms_ = total;
  prefill_sms_ = total - decode_sms_;
  if (prefill_sms_ == 0) prefill_sms_ = total;

  decode_stream_ = device_->CreateStream(
      options_.mode == Mode::kSpatial ? decode_sms_ : total);
  prefill_stream_ = device_->CreateStream(
      options_.mode == Mode::kSpatial ? prefill_sms_ : total);
}

void MultiplexEngine::SetPartition(int decode_sms, int prefill_sms) {
  if (options_.mode != Mode::kSpatial) return;
  MUX_CHECK(decode_sms > 0 && prefill_sms > 0);
  if (decode_sms == decode_sms_ && prefill_sms == prefill_sms_) return;
  decode_sms_ = decode_sms;
  prefill_sms_ = prefill_sms;
  device_->SetStreamSms(decode_stream_, decode_sms_);
  device_->SetStreamSms(prefill_stream_, prefill_sms_);
  host_->Submit(options_.reconfig_cost, nullptr);
  ++reconfigurations_;
  // Traced as a retroactive complete span rather than a callback on the
  // host submission above: attaching a tracer must not add simulator
  // events, and the reconfiguration window is fully modelled anyway.
  tracer_.Complete("partition", "reconfig",
                   static_cast<std::int64_t>(reconfigurations_), sim_->Now(),
                   options_.reconfig_cost);
  TracePartition();
}

void MultiplexEngine::AttachTracer(obs::Tracer tracer) {
  tracer_ = tracer;
  device_->SetTracer(tracer, "gpu/");
  TracePartition();
}

void MultiplexEngine::TracePartition() const {
  if (!tracer_.enabled()) return;
  tracer_.Counter("partition", "decode-sms",
                  static_cast<double>(device_->StreamSms(decode_stream_)));
  tracer_.Counter("partition", "prefill-sms",
                  static_cast<double>(device_->StreamSms(prefill_stream_)));
}

void MultiplexEngine::LaunchDecode(const gpu::Kernel& kernel,
                                   sim::Duration launch_cost,
                                   std::function<void()> done) {
  host_->Submit(launch_cost,
                [this, kernel, done = std::move(done), e = epoch_] {
                  if (e != epoch_) return;
                  device_->Launch(decode_stream_, kernel, std::move(done));
                });
}

void MultiplexEngine::LaunchPrefillGroup(const gpu::Kernel& kernel,
                                         sim::Duration launch_cost,
                                         std::function<void()> done) {
  const gpu::StreamId stream = options_.mode == Mode::kTemporal
                                   ? decode_stream_
                                   : prefill_stream_;
  host_->Submit(launch_cost,
                [this, stream, kernel, done = std::move(done), e = epoch_] {
                  if (e != epoch_) return;
                  device_->Launch(stream, kernel, std::move(done));
                });
}

void MultiplexEngine::Abort() {
  ++epoch_;
  device_->AbortAll();
}

double MultiplexEngine::AverageBubbleRatio() const {
  const double d = device_->stream_stats(decode_stream_).BubbleRatio();
  if (options_.mode == Mode::kTemporal) return d;
  const double p = device_->stream_stats(prefill_stream_).BubbleRatio();
  return (d + p) / 2.0;
}

void MultiplexEngine::RegisterAudits(check::InvariantRegistry& registry) const {
  registry.Register(
      "MultiplexEngine", "partition-conservation",
      [this](check::AuditContext& ctx) {
        if (options_.mode != Mode::kSpatial) return;
        const int total = device_->spec().sm_count;
        ctx.Check(decode_sms_ > 0 && prefill_sms_ > 0,
                  "spatial partition with an empty green context");
        // When no prefill is runnable the scheduler parks decode on the
        // full device and the prefill context keeps a minimum-size mask
        // it never launches on (green-context masks may overlap while
        // one context is idle). Conservation must hold whenever the
        // prefill context could actually execute.
        const bool prefill_parked =
            decode_sms_ == total && device_->StreamIdle(prefill_stream_);
        // The mirror state: decode terminated mid-prefill (bubble
        // type 2), the later prefill layers moved to a full-device
        // context, and no decode ran afterwards (e.g. the final
        // request needed zero decode iterations).
        const bool decode_parked =
            prefill_sms_ == total && device_->StreamIdle(decode_stream_);
        ctx.Check(
            decode_sms_ + prefill_sms_ <= total || prefill_parked ||
                decode_parked,
                  "partition " + std::to_string(decode_sms_) + "+" +
                      std::to_string(prefill_sms_) + " oversubscribes " +
                      std::to_string(total) + " SMs with prefill runnable");
        // The streams must still carry exactly the partition the engine
        // believes it configured (reconfigurations are not lost).
        ctx.Check(device_->StreamSms(decode_stream_) == decode_sms_,
                  "decode stream grant drifted from configured partition");
        ctx.Check(device_->StreamSms(prefill_stream_) == prefill_sms_,
                  "prefill stream grant drifted from configured partition");
      });
  device_->RegisterAudits(registry);
}

}  // namespace muxwise::core
