#include "harness/scenario.h"

#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "gpu/gpu_spec.h"
#include "harness/json.h"
#include "llm/model_config.h"
#include "sim/logging.h"

namespace muxwise::harness {

namespace {

// ---------------------------------------------------------------------------
// Strict field extraction. Every helper returns false after recording a
// path-qualified error, so a malformed scenario names its own defect
// instead of silently running something else.
// ---------------------------------------------------------------------------

struct ParseContext {
  std::string source;
  std::string error;

  bool Fail(const std::string& path, const std::string& what) {
    error = source + ": " + path + ": " + what;
    return false;
  }
};

bool CheckKeys(const json::Value& object, const std::string& path,
               std::initializer_list<const char*> allowed,
               ParseContext& ctx) {
  for (const auto& [key, value] : object.object) {
    bool known = false;
    for (const char* name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) return ctx.Fail(path, "unknown key \"" + key + "\"");
  }
  return true;
}

bool RequireObject(const json::Value* v, const std::string& path,
                   ParseContext& ctx) {
  if (v == nullptr || !v->IsObject()) {
    return ctx.Fail(path, "expected an object");
  }
  return true;
}

bool GetDouble(const json::Value& object, const std::string& path,
               const std::string& key, bool required, double fallback,
               double* out, ParseContext& ctx) {
  const json::Value* v = object.Find(key);
  if (v == nullptr) {
    if (required) return ctx.Fail(path, "missing required \"" + key + "\"");
    *out = fallback;
    return true;
  }
  if (v->type != json::Value::Type::kNumber) {
    return ctx.Fail(path + "." + key, "expected a number");
  }
  *out = v->number;
  return true;
}

bool GetInteger(const json::Value& object, const std::string& path,
                const std::string& key, bool required, std::int64_t fallback,
                std::int64_t* out, ParseContext& ctx) {
  double value = 0.0;
  if (!GetDouble(object, path, key, required,
                 static_cast<double>(fallback), &value, ctx)) {
    return false;
  }
  if (value != std::floor(value)) {
    return ctx.Fail(path + "." + key, "expected an integer");
  }
  *out = static_cast<std::int64_t>(value);
  return true;
}

bool ParseEngine(const std::string& name, EngineKind* out) {
  static const std::map<std::string, EngineKind> kEngines = {
      {"muxwise", EngineKind::kMuxWise},
      {"chunked", EngineKind::kChunked},
      {"nanoflow", EngineKind::kNanoFlow},
      {"sglang-pd", EngineKind::kSglangPd},
      {"loongserve", EngineKind::kLoongServe},
      {"windserve", EngineKind::kWindServe},
      {"temporal", EngineKind::kTemporal},
  };
  const auto it = kEngines.find(name);
  if (it == kEngines.end()) return false;
  *out = it->second;
  return true;
}

bool ParseDataset(const std::string& name, workload::Dataset* out) {
  static const std::map<std::string, workload::Dataset> kDatasets = {
      {"sharegpt", workload::Dataset::kShareGpt},
      {"loogle", workload::Dataset::kLoogle},
      {"openthoughts", workload::Dataset::kOpenThoughts},
      {"conversation", workload::Dataset::kConversation},
      {"toolagent", workload::Dataset::kToolAgent},
  };
  const auto it = kDatasets.find(name);
  if (it == kDatasets.end()) return false;
  *out = it->second;
  return true;
}

bool KnownModel(const std::string& name) {
  return name == "Llama-8B" || name == "Llama-70B" ||
         name == "Qwen3-235B-A22B" || name == "Qwen-235B" ||
         name == "CodeLlama-34B";
}

bool KnownGpu(const std::string& name) {
  return name == "A100" || name == "H100" || name == "H200";
}

bool ParseDeployment(const json::Value& root, ScenarioSpec& spec,
                     ParseContext& ctx) {
  const json::Value* v = root.Find("deployment");
  if (v == nullptr) return true;
  if (!RequireObject(v, "deployment", ctx)) return false;
  if (!CheckKeys(*v, "deployment", {"model", "gpu", "num_gpus"}, ctx)) {
    return false;
  }
  spec.model = json::GetString(v->Find("model"), spec.model);
  spec.gpu = json::GetString(v->Find("gpu"), spec.gpu);
  if (!KnownModel(spec.model)) {
    return ctx.Fail("deployment.model", "unknown model \"" + spec.model + "\"");
  }
  if (!KnownGpu(spec.gpu)) {
    return ctx.Fail("deployment.gpu", "unknown GPU \"" + spec.gpu + "\"");
  }
  std::int64_t num_gpus = spec.num_gpus;
  if (!GetInteger(*v, "deployment", "num_gpus", false, num_gpus, &num_gpus,
                  ctx)) {
    return false;
  }
  if (num_gpus < 1 || num_gpus > 64) {
    return ctx.Fail("deployment.num_gpus", "out of range [1, 64]");
  }
  spec.num_gpus = static_cast<int>(num_gpus);
  return true;
}

bool ParseLengths(const json::Value* v, const std::string& path,
                  StreamingLengths* out, ParseContext& ctx) {
  if (v == nullptr) return true;
  if (!RequireObject(v, path, ctx)) return false;
  if (!CheckKeys(*v, path, {"min", "mean", "max"}, ctx)) return false;
  std::int64_t min = out->min;
  std::int64_t max = out->max;
  if (!GetInteger(*v, path, "min", false, min, &min, ctx)) return false;
  if (!GetInteger(*v, path, "max", false, max, &max, ctx)) return false;
  if (!GetDouble(*v, path, "mean", false, out->mean, &out->mean, ctx)) {
    return false;
  }
  if (min < 1 || max < min || out->mean < static_cast<double>(min) ||
      out->mean > static_cast<double>(max)) {
    return ctx.Fail(path, "requires 1 <= min <= mean <= max");
  }
  out->min = min;
  out->max = max;
  return true;
}

bool ParseTrace(const json::Value& root, ScenarioSpec& spec,
                ParseContext& ctx) {
  const json::Value* trace = root.Find("trace");
  if (!RequireObject(trace, "trace", ctx)) return false;
  if (!CheckKeys(*trace, "trace", {"mix", "mmpp", "streaming"}, ctx)) {
    return false;
  }
  const json::Value* mix = trace->Find("mix");
  const json::Value* mmpp = trace->Find("mmpp");
  const json::Value* streaming = trace->Find("streaming");
  const int shapes = (mix != nullptr) + (mmpp != nullptr) +
                     (streaming != nullptr);
  if (shapes != 1) {
    return ctx.Fail(
        "trace", "exactly one of \"mix\", \"mmpp\", \"streaming\" required");
  }

  if (mix != nullptr) {
    if (!mix->IsArray() || mix->array.empty()) {
      return ctx.Fail("trace.mix", "expected a non-empty array");
    }
    for (std::size_t i = 0; i < mix->array.size(); ++i) {
      const std::string path = "trace.mix[" + std::to_string(i) + "]";
      const json::Value& part = mix->array[i];
      if (!RequireObject(&part, path, ctx)) return false;
      if (!CheckKeys(part, path,
                     {"dataset", "requests", "rate_per_second", "seed"},
                     ctx)) {
        return false;
      }
      TraceMixPart out;
      const std::string dataset =
          json::GetString(part.Find("dataset"), "sharegpt");
      if (!ParseDataset(dataset, &out.dataset)) {
        return ctx.Fail(path + ".dataset",
                        "unknown dataset \"" + dataset + "\"");
      }
      std::int64_t requests = 0;
      std::int64_t seed = 1;
      if (!GetInteger(part, path, "requests", true, 0, &requests, ctx) ||
          !GetDouble(part, path, "rate_per_second", true, 0.0,
                     &out.rate_per_second, ctx) ||
          !GetInteger(part, path, "seed", false, 1, &seed, ctx)) {
        return false;
      }
      if (requests < 1) return ctx.Fail(path + ".requests", "must be >= 1");
      if (out.rate_per_second <= 0.0) {
        return ctx.Fail(path + ".rate_per_second", "must be > 0");
      }
      out.requests = static_cast<int>(requests);
      out.seed = static_cast<std::uint64_t>(seed);
      spec.mix.push_back(out);
    }
    return true;
  }

  if (mmpp != nullptr) {
    const std::string path = "trace.mmpp";
    if (!RequireObject(mmpp, path, ctx)) return false;
    if (!CheckKeys(*mmpp, path,
                   {"dataset", "calm_rate_per_second", "burst_multiplier",
                    "mean_calm_seconds", "mean_burst_seconds",
                    "duration_seconds", "class_mix", "seed"},
                   ctx)) {
      return false;
    }
    workload::MmppOptions options;
    const std::string dataset =
        json::GetString(mmpp->Find("dataset"), "sharegpt");
    if (!ParseDataset(dataset, &options.dataset)) {
      return ctx.Fail(path + ".dataset", "unknown dataset \"" + dataset + "\"");
    }
    std::int64_t seed = 1;
    if (!GetDouble(*mmpp, path, "calm_rate_per_second", true, 0.0,
                   &options.calm_rate_per_second, ctx) ||
        !GetDouble(*mmpp, path, "burst_multiplier", false,
                   options.burst_multiplier, &options.burst_multiplier, ctx) ||
        !GetDouble(*mmpp, path, "mean_calm_seconds", false,
                   options.mean_calm_seconds, &options.mean_calm_seconds,
                   ctx) ||
        !GetDouble(*mmpp, path, "mean_burst_seconds", false,
                   options.mean_burst_seconds, &options.mean_burst_seconds,
                   ctx) ||
        !GetDouble(*mmpp, path, "duration_seconds", false,
                   options.duration_seconds, &options.duration_seconds, ctx) ||
        !GetInteger(*mmpp, path, "seed", false, 1, &seed, ctx)) {
      return false;
    }
    if (options.calm_rate_per_second <= 0.0) {
      return ctx.Fail(path + ".calm_rate_per_second", "must be > 0");
    }
    if (const json::Value* class_mix = mmpp->Find("class_mix");
        class_mix != nullptr) {
      if (!class_mix->IsArray() ||
          class_mix->array.size() != workload::kNumSloClasses) {
        return ctx.Fail(path + ".class_mix",
                        "expected [interactive, standard, batch] weights");
      }
      for (int i = 0; i < workload::kNumSloClasses; ++i) {
        options.class_mix[i] = class_mix->array[i].number;
      }
    }
    spec.mmpp = options;
    spec.mmpp_seed = static_cast<std::uint64_t>(seed);
    return true;
  }

  const std::string path = "trace.streaming";
  if (!RequireObject(streaming, path, ctx)) return false;
  if (!CheckKeys(*streaming, path,
                 {"requests", "rate_per_second", "input_tokens",
                  "output_tokens", "seed", "exact_subsample_period"},
                 ctx)) {
    return false;
  }
  StreamingSpec out;
  std::int64_t requests = 0;
  std::int64_t seed = 1;
  std::int64_t period = static_cast<std::int64_t>(out.exact_subsample_period);
  if (!GetInteger(*streaming, path, "requests", true, 0, &requests, ctx) ||
      !GetDouble(*streaming, path, "rate_per_second", true, 0.0,
                 &out.rate_per_second, ctx) ||
      !GetInteger(*streaming, path, "seed", false, 1, &seed, ctx) ||
      !GetInteger(*streaming, path, "exact_subsample_period", false, period,
                  &period, ctx)) {
    return false;
  }
  if (requests < 1) return ctx.Fail(path + ".requests", "must be >= 1");
  if (out.rate_per_second <= 0.0) {
    return ctx.Fail(path + ".rate_per_second", "must be > 0");
  }
  if (period < 0) {
    return ctx.Fail(path + ".exact_subsample_period", "must be >= 0");
  }
  out.total_requests = static_cast<std::uint64_t>(requests);
  out.seed = static_cast<std::uint64_t>(seed);
  out.exact_subsample_period = static_cast<std::uint64_t>(period);
  if (!ParseLengths(streaming->Find("input_tokens"), path + ".input_tokens",
                    &out.input, ctx) ||
      !ParseLengths(streaming->Find("output_tokens"), path + ".output_tokens",
                    &out.output, ctx)) {
    return false;
  }
  spec.streaming = out;
  return true;
}

bool ParseSlo(const json::Value& root, ScenarioSpec& spec, ParseContext& ctx) {
  const json::Value* v = root.Find("slo");
  if (v == nullptr) return true;
  if (!RequireObject(v, "slo", ctx)) return false;
  if (!CheckKeys(*v, "slo",
                 {"ttft_ms", "tbt_ms", "ttft_per_token_us", "percentile"},
                 ctx)) {
    return false;
  }
  // Start from the model's defaults so a partial override keeps the
  // rest (matching SloTargets::ForModel in the hand-coded scenarios).
  workload::SloTargets slo = workload::SloTargets::ForModel(spec.model);
  double ttft_ms = sim::ToMilliseconds(slo.ttft);
  double tbt_ms = sim::ToMilliseconds(slo.tbt);
  double per_token_us = static_cast<double>(slo.ttft_per_token) / 1e3;
  if (!GetDouble(*v, "slo", "ttft_ms", false, ttft_ms, &ttft_ms, ctx) ||
      !GetDouble(*v, "slo", "tbt_ms", false, tbt_ms, &tbt_ms, ctx) ||
      !GetDouble(*v, "slo", "ttft_per_token_us", false, per_token_us,
                 &per_token_us, ctx) ||
      !GetDouble(*v, "slo", "percentile", false, slo.percentile,
                 &slo.percentile, ctx)) {
    return false;
  }
  if (ttft_ms <= 0 || tbt_ms <= 0 || per_token_us < 0 ||
      slo.percentile <= 0.0 || slo.percentile > 1.0) {
    return ctx.Fail("slo", "targets must be positive, percentile in (0, 1]");
  }
  slo.ttft = sim::Milliseconds(ttft_ms);
  slo.tbt = sim::Milliseconds(tbt_ms);
  slo.ttft_per_token = sim::Microseconds(per_token_us);
  spec.slo = slo;
  return true;
}

bool ParseRun(const json::Value& root, ScenarioSpec& spec, ParseContext& ctx) {
  const json::Value* v = root.Find("run");
  if (v == nullptr) return true;
  if (!RequireObject(v, "run", ctx)) return false;
  if (!CheckKeys(*v, "run",
                 {"drain_timeout_seconds", "steady_state", "event_budget",
                  "token_budget"},
                 ctx)) {
    return false;
  }
  std::int64_t event_budget =
      static_cast<std::int64_t>(spec.config.event_budget);
  std::int64_t token_budget = spec.config.token_budget;
  if (!GetDouble(*v, "run", "drain_timeout_seconds", false,
                 spec.config.drain_timeout_seconds,
                 &spec.config.drain_timeout_seconds, ctx) ||
      !GetInteger(*v, "run", "event_budget", false, event_budget,
                  &event_budget, ctx) ||
      !GetInteger(*v, "run", "token_budget", false, token_budget,
                  &token_budget, ctx)) {
    return false;
  }
  spec.config.steady_state =
      json::GetBool(v->Find("steady_state"), spec.config.steady_state);
  if (spec.config.drain_timeout_seconds <= 0.0) {
    return ctx.Fail("run.drain_timeout_seconds", "must be > 0");
  }
  if (event_budget < 1) return ctx.Fail("run.event_budget", "must be >= 1");
  if (token_budget < 0) return ctx.Fail("run.token_budget", "must be >= 0");
  spec.config.event_budget = static_cast<std::size_t>(event_budget);
  spec.config.token_budget = static_cast<int>(token_budget);
  return true;
}

bool ParseOverload(const json::Value& root, ScenarioSpec& spec,
                   ParseContext& ctx) {
  const json::Value* v = root.Find("overload");
  if (v == nullptr) return true;
  if (!RequireObject(v, "overload", ctx)) return false;
  if (!CheckKeys(*v, "overload", {"enabled", "preemption", "spill"}, ctx)) {
    return false;
  }
  spec.config.overload.enabled = json::GetBool(v->Find("enabled"), false);
  spec.config.overload.preemption =
      json::GetBool(v->Find("preemption"), spec.config.overload.preemption);
  spec.config.overload.spill =
      json::GetBool(v->Find("spill"), spec.config.overload.spill);
  return true;
}

bool ParseFleet(const json::Value& root, ScenarioSpec& spec,
                ParseContext& ctx) {
  const json::Value* v = root.Find("fleet");
  if (v == nullptr) return true;
  if (!RequireObject(v, "fleet", ctx)) return false;
  if (!CheckKeys(*v, "fleet",
                 {"enabled", "replicas", "failover", "migration",
                  "heartbeat_ms", "suspect_after_misses", "down_after_misses",
                  "recovery_probation_beats", "suspect_exit_beats",
                  "zombie_detection", "zombie_after_beats",
                  "zombie_down_beats", "partition_detection"},
                 ctx)) {
    return false;
  }
  spec.config.fleet.enabled = json::GetBool(v->Find("enabled"), false);
  std::int64_t replicas =
      static_cast<std::int64_t>(spec.config.fleet.replicas);
  if (!GetInteger(*v, "fleet", "replicas", false, replicas, &replicas, ctx)) {
    return false;
  }
  if (replicas < 1 || replicas > 64) {
    return ctx.Fail("fleet.replicas", "out of range [1, 64]");
  }
  spec.config.fleet.replicas = static_cast<std::size_t>(replicas);
  spec.config.fleet.failover =
      json::GetBool(v->Find("failover"), spec.config.fleet.failover);
  spec.config.fleet.migration =
      json::GetBool(v->Find("migration"), spec.config.fleet.migration);

  route::HealthPolicy& health = spec.config.fleet.health;
  double heartbeat_ms = sim::ToMilliseconds(health.heartbeat_interval);
  std::int64_t suspect = health.suspect_after_misses;
  std::int64_t down = health.down_after_misses;
  std::int64_t probation = health.recovery_probation_beats;
  std::int64_t exit_beats = health.suspect_exit_beats;
  std::int64_t zombie_after = health.zombie_after_beats;
  std::int64_t zombie_down = health.zombie_down_beats;
  if (!GetDouble(*v, "fleet", "heartbeat_ms", false, heartbeat_ms,
                 &heartbeat_ms, ctx) ||
      !GetInteger(*v, "fleet", "suspect_after_misses", false, suspect,
                  &suspect, ctx) ||
      !GetInteger(*v, "fleet", "down_after_misses", false, down, &down,
                  ctx) ||
      !GetInteger(*v, "fleet", "recovery_probation_beats", false, probation,
                  &probation, ctx) ||
      !GetInteger(*v, "fleet", "suspect_exit_beats", false, exit_beats,
                  &exit_beats, ctx) ||
      !GetInteger(*v, "fleet", "zombie_after_beats", false, zombie_after,
                  &zombie_after, ctx) ||
      !GetInteger(*v, "fleet", "zombie_down_beats", false, zombie_down,
                  &zombie_down, ctx)) {
    return false;
  }
  if (heartbeat_ms <= 0.0) return ctx.Fail("fleet.heartbeat_ms", "must be > 0");
  if (suspect < 1) return ctx.Fail("fleet.suspect_after_misses", "must be >= 1");
  if (down < suspect) {
    return ctx.Fail("fleet.down_after_misses",
                    "must be >= suspect_after_misses");
  }
  if (probation < 0) {
    return ctx.Fail("fleet.recovery_probation_beats", "must be >= 0");
  }
  if (exit_beats < 1) {
    return ctx.Fail("fleet.suspect_exit_beats", "must be >= 1");
  }
  if (zombie_after < 1) {
    return ctx.Fail("fleet.zombie_after_beats", "must be >= 1");
  }
  if (zombie_down < zombie_after) {
    return ctx.Fail("fleet.zombie_down_beats",
                    "must be >= zombie_after_beats");
  }
  health.heartbeat_interval = sim::Milliseconds(heartbeat_ms);
  health.suspect_after_misses = static_cast<int>(suspect);
  health.down_after_misses = static_cast<int>(down);
  health.recovery_probation_beats = static_cast<int>(probation);
  health.suspect_exit_beats = static_cast<int>(exit_beats);
  health.zombie_after_beats = static_cast<int>(zombie_after);
  health.zombie_down_beats = static_cast<int>(zombie_down);
  health.zombie_detection =
      json::GetBool(v->Find("zombie_detection"), health.zombie_detection);
  health.partition_detection =
      json::GetBool(v->Find("partition_detection"), health.partition_detection);
  return true;
}

bool ParseFaults(const json::Value& root, ScenarioSpec& spec,
                 ParseContext& ctx) {
  const json::Value* v = root.Find("faults");
  if (v == nullptr) return true;
  if (!RequireObject(v, "faults", ctx)) return false;
  if (!CheckKeys(*v, "faults",
                 {"seed", "crashes", "stragglers", "transfer_drops", "zombies",
                  "flaps", "degrades", "partitions"},
                 ctx)) {
    return false;
  }
  fault::FaultPlan plan;
  std::int64_t seed = static_cast<std::int64_t>(plan.seed);
  if (!GetInteger(*v, "faults", "seed", false, seed, &seed, ctx)) {
    return false;
  }
  plan.seed = static_cast<std::uint64_t>(seed);

  if (const json::Value* crashes = v->Find("crashes"); crashes != nullptr) {
    if (!crashes->IsArray()) {
      return ctx.Fail("faults.crashes", "expected an array");
    }
    for (std::size_t i = 0; i < crashes->array.size(); ++i) {
      const std::string path = "faults.crashes[" + std::to_string(i) + "]";
      const json::Value& entry = crashes->array[i];
      if (!RequireObject(&entry, path, ctx)) return false;
      if (!CheckKeys(entry, path,
                     {"instance", "at_seconds", "recover_at_seconds"}, ctx)) {
        return false;
      }
      std::int64_t inst = 0;
      double at = 0.0;
      if (!GetInteger(entry, path, "instance", false, 0, &inst, ctx) ||
          !GetDouble(entry, path, "at_seconds", true, 0.0, &at, ctx)) {
        return false;
      }
      sim::Time recover = sim::kTimeNever;
      if (entry.Find("recover_at_seconds") != nullptr) {
        double recover_at = 0.0;
        if (!GetDouble(entry, path, "recover_at_seconds", true, 0.0,
                       &recover_at, ctx)) {
          return false;
        }
        if (recover_at <= at) {
          return ctx.Fail(path, "recover_at_seconds must exceed at_seconds");
        }
        recover = sim::Seconds(recover_at);
      }
      if (inst < 0 || at < 0.0) {
        return ctx.Fail(path, "instance and at_seconds must be >= 0");
      }
      plan.Crash(static_cast<std::size_t>(inst), sim::Seconds(at), recover);
    }
  }

  if (const json::Value* stragglers = v->Find("stragglers");
      stragglers != nullptr) {
    if (!stragglers->IsArray()) {
      return ctx.Fail("faults.stragglers", "expected an array");
    }
    for (std::size_t i = 0; i < stragglers->array.size(); ++i) {
      const std::string path = "faults.stragglers[" + std::to_string(i) + "]";
      const json::Value& entry = stragglers->array[i];
      if (!RequireObject(&entry, path, ctx)) return false;
      if (!CheckKeys(entry, path,
                     {"instance", "from_seconds", "to_seconds", "slowdown"},
                     ctx)) {
        return false;
      }
      std::int64_t inst = 0;
      double from = 0.0, to = 0.0, slowdown = 2.0;
      if (!GetInteger(entry, path, "instance", false, 0, &inst, ctx) ||
          !GetDouble(entry, path, "from_seconds", true, 0.0, &from, ctx) ||
          !GetDouble(entry, path, "to_seconds", true, 0.0, &to, ctx) ||
          !GetDouble(entry, path, "slowdown", false, 2.0, &slowdown, ctx)) {
        return false;
      }
      if (inst < 0 || from < 0.0 || to <= from || slowdown < 1.0) {
        return ctx.Fail(path,
                        "requires 0 <= from < to and slowdown >= 1");
      }
      plan.Straggle(static_cast<std::size_t>(inst), sim::Seconds(from),
                    sim::Seconds(to), slowdown);
    }
  }

  if (const json::Value* drops = v->Find("transfer_drops"); drops != nullptr) {
    if (!drops->IsArray()) {
      return ctx.Fail("faults.transfer_drops", "expected an array");
    }
    for (std::size_t i = 0; i < drops->array.size(); ++i) {
      const std::string path =
          "faults.transfer_drops[" + std::to_string(i) + "]";
      const json::Value& entry = drops->array[i];
      if (!RequireObject(&entry, path, ctx)) return false;
      if (!CheckKeys(entry, path,
                     {"from_seconds", "to_seconds", "probability"}, ctx)) {
        return false;
      }
      double from = 0.0, to = 0.0, probability = 0.0;
      if (!GetDouble(entry, path, "from_seconds", true, 0.0, &from, ctx) ||
          !GetDouble(entry, path, "to_seconds", true, 0.0, &to, ctx) ||
          !GetDouble(entry, path, "probability", true, 0.0, &probability,
                     ctx)) {
        return false;
      }
      if (from < 0.0 || to <= from || probability < 0.0 ||
          probability > 1.0) {
        return ctx.Fail(path,
                        "requires 0 <= from < to and probability in [0, 1]");
      }
      plan.DropTransfers(sim::Seconds(from), sim::Seconds(to), probability);
    }
  }

  if (const json::Value* zombies = v->Find("zombies"); zombies != nullptr) {
    if (!zombies->IsArray()) {
      return ctx.Fail("faults.zombies", "expected an array");
    }
    for (std::size_t i = 0; i < zombies->array.size(); ++i) {
      const std::string path = "faults.zombies[" + std::to_string(i) + "]";
      const json::Value& entry = zombies->array[i];
      if (!RequireObject(&entry, path, ctx)) return false;
      if (!CheckKeys(entry, path, {"instance", "from_seconds", "to_seconds"},
                     ctx)) {
        return false;
      }
      std::int64_t inst = 0;
      double from = 0.0, to = 0.0;
      if (!GetInteger(entry, path, "instance", false, 0, &inst, ctx) ||
          !GetDouble(entry, path, "from_seconds", true, 0.0, &from, ctx) ||
          !GetDouble(entry, path, "to_seconds", true, 0.0, &to, ctx)) {
        return false;
      }
      if (inst < 0 || from < 0.0 || to <= from) {
        return ctx.Fail(path, "requires instance >= 0 and 0 <= from < to");
      }
      plan.Zombie(static_cast<std::size_t>(inst), sim::Seconds(from),
                  sim::Seconds(to));
    }
  }

  if (const json::Value* flaps = v->Find("flaps"); flaps != nullptr) {
    if (!flaps->IsArray()) {
      return ctx.Fail("faults.flaps", "expected an array");
    }
    for (std::size_t i = 0; i < flaps->array.size(); ++i) {
      const std::string path = "faults.flaps[" + std::to_string(i) + "]";
      const json::Value& entry = flaps->array[i];
      if (!RequireObject(&entry, path, ctx)) return false;
      if (!CheckKeys(entry, path,
                     {"instance", "link", "from_seconds", "to_seconds",
                      "period_seconds", "duty_up"},
                     ctx)) {
        return false;
      }
      std::int64_t inst = 0;
      double from = 0.0, to = 0.0, period = 0.0, duty_up = 0.5;
      if (!GetInteger(entry, path, "instance", false, 0, &inst, ctx) ||
          !GetDouble(entry, path, "from_seconds", true, 0.0, &from, ctx) ||
          !GetDouble(entry, path, "to_seconds", true, 0.0, &to, ctx) ||
          !GetDouble(entry, path, "period_seconds", true, 0.0, &period,
                     ctx) ||
          !GetDouble(entry, path, "duty_up", false, 0.5, &duty_up, ctx)) {
        return false;
      }
      const bool link = json::GetBool(entry.Find("link"), false);
      if (inst < 0 || from < 0.0 || to <= from || period <= 0.0 ||
          duty_up <= 0.0 || duty_up >= 1.0) {
        return ctx.Fail(path,
                        "requires 0 <= from < to, period > 0, and duty_up "
                        "in (0, 1)");
      }
      if (link) {
        plan.FlapLink(sim::Seconds(from), sim::Seconds(to),
                      sim::Seconds(period), duty_up);
      } else {
        plan.Flap(static_cast<std::size_t>(inst), sim::Seconds(from),
                  sim::Seconds(to), sim::Seconds(period), duty_up);
      }
    }
  }

  if (const json::Value* degrades = v->Find("degrades"); degrades != nullptr) {
    if (!degrades->IsArray()) {
      return ctx.Fail("faults.degrades", "expected an array");
    }
    for (std::size_t i = 0; i < degrades->array.size(); ++i) {
      const std::string path = "faults.degrades[" + std::to_string(i) + "]";
      const json::Value& entry = degrades->array[i];
      if (!RequireObject(&entry, path, ctx)) return false;
      if (!CheckKeys(entry, path,
                     {"instance", "link", "from_seconds", "to_seconds",
                      "flops_factor", "bandwidth_factor"},
                     ctx)) {
        return false;
      }
      std::int64_t inst = 0;
      double from = 0.0, to = 0.0, ff = 1.0, bf = 1.0;
      if (!GetInteger(entry, path, "instance", false, 0, &inst, ctx) ||
          !GetDouble(entry, path, "from_seconds", true, 0.0, &from, ctx) ||
          !GetDouble(entry, path, "to_seconds", true, 0.0, &to, ctx) ||
          !GetDouble(entry, path, "flops_factor", false, 1.0, &ff, ctx) ||
          !GetDouble(entry, path, "bandwidth_factor", false, 1.0, &bf, ctx)) {
        return false;
      }
      const bool link = json::GetBool(entry.Find("link"), false);
      if (inst < 0 || from < 0.0 || to <= from || ff <= 0.0 || ff > 1.0 ||
          bf <= 0.0 || bf > 1.0) {
        return ctx.Fail(path,
                        "requires 0 <= from < to and factors in (0, 1]");
      }
      if (link) {
        if (ff != 1.0) {
          return ctx.Fail(path,
                          "a link degrade cannot carry a flops_factor");
        }
        plan.DegradeLink(sim::Seconds(from), sim::Seconds(to), bf);
      } else {
        plan.Degrade(static_cast<std::size_t>(inst), sim::Seconds(from),
                     sim::Seconds(to), ff, bf);
      }
    }
  }

  if (const json::Value* partitions = v->Find("partitions");
      partitions != nullptr) {
    if (!partitions->IsArray()) {
      return ctx.Fail("faults.partitions", "expected an array");
    }
    for (std::size_t i = 0; i < partitions->array.size(); ++i) {
      const std::string path = "faults.partitions[" + std::to_string(i) + "]";
      const json::Value& entry = partitions->array[i];
      if (!RequireObject(&entry, path, ctx)) return false;
      if (!CheckKeys(entry, path,
                     {"instance", "from_seconds", "to_seconds",
                      "drop_to_replica", "drop_from_replica"},
                     ctx)) {
        return false;
      }
      std::int64_t inst = 0;
      double from = 0.0, to = 0.0;
      if (!GetInteger(entry, path, "instance", false, 0, &inst, ctx) ||
          !GetDouble(entry, path, "from_seconds", true, 0.0, &from, ctx) ||
          !GetDouble(entry, path, "to_seconds", true, 0.0, &to, ctx)) {
        return false;
      }
      const bool drop_to = json::GetBool(entry.Find("drop_to_replica"), false);
      const bool drop_from =
          json::GetBool(entry.Find("drop_from_replica"), false);
      if (inst < 0 || from < 0.0 || to <= from) {
        return ctx.Fail(path, "requires instance >= 0 and 0 <= from < to");
      }
      if (drop_to && drop_from) {
        return ctx.Fail(path,
                        "dropping both directions is a crash, not a "
                        "partition; use faults.crashes");
      }
      if (!drop_to && !drop_from) {
        return ctx.Fail(path, "must drop at least one direction");
      }
      plan.Partition(static_cast<std::size_t>(inst), sim::Seconds(from),
                     sim::Seconds(to), drop_to, drop_from);
    }
  }

  if (plan.Empty()) {
    return ctx.Fail("faults", "declared but contains no fault entries");
  }
  const std::string plan_error = plan.Check();
  if (!plan_error.empty()) return ctx.Fail("faults", plan_error);
  spec.config.fault_plan = std::move(plan);
  return true;
}

bool ParseRecovery(const json::Value& root, ScenarioSpec& spec,
                   ParseContext& ctx) {
  const json::Value* v = root.Find("recovery");
  if (v == nullptr) return true;
  if (!RequireObject(v, "recovery", ctx)) return false;
  if (!CheckKeys(*v, "recovery", {"enabled"}, ctx)) return false;
  spec.config.recovery.enabled = json::GetBool(v->Find("enabled"), false);
  return true;
}

// ---------------------------------------------------------------------------
// Deployment + estimator plumbing for the run entry points.
// ---------------------------------------------------------------------------

serve::Deployment MakeDeployment(const ScenarioSpec& spec) {
  serve::Deployment deployment = serve::Deployment::Make(
      llm::ModelConfig::ByName(spec.model), gpu::GpuSpec::ByName(spec.gpu),
      spec.num_gpus);
  if (spec.slo.has_value()) deployment.slo = *spec.slo;
  return deployment;
}

/**
 * Offline contention profiling is by far the most expensive step of a
 * scenario, and it depends only on the hardware/model shape — never on
 * SLO overrides (estimators are built from the pristine deployment) —
 * so matrix runs share one estimator across repeats and thread counts.
 */
const core::ContentionEstimator& CachedEstimator(const ScenarioSpec& spec) {
  static std::map<std::string, std::unique_ptr<core::ContentionEstimator>>
      cache;
  const std::string key =
      spec.model + "|" + spec.gpu + "|" + std::to_string(spec.num_gpus);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const serve::Deployment pristine = serve::Deployment::Make(
        llm::ModelConfig::ByName(spec.model), gpu::GpuSpec::ByName(spec.gpu),
        spec.num_gpus);
    it = cache
             .emplace(key, std::make_unique<core::ContentionEstimator>(
                               core::ContentionEstimator::BuildOffline(
                                   pristine)))
             .first;
  }
  return *it->second;
}

}  // namespace

ScenarioParseResult ParseScenarioJson(const std::string& text,
                                      const std::string& source) {
  ScenarioParseResult result;
  ParseContext ctx;
  ctx.source = source;

  json::Value root;
  std::string json_error;
  if (!json::Parse(text, root, json_error)) {
    result.error = source + ": " + json_error;
    return result;
  }
  if (!root.IsObject()) {
    result.error = source + ": scenario root is not an object";
    return result;
  }

  ScenarioSpec spec;
  if (!CheckKeys(root, "(root)",
                 {"name", "engine", "deployment", "threads", "trace", "slo",
                  "run", "overload", "fleet", "faults", "recovery"},
                 ctx)) {
    result.error = ctx.error;
    return result;
  }

  spec.name = json::GetString(root.Find("name"));
  if (spec.name.empty()) {
    result.error = source + ": (root): missing required \"name\"";
    return result;
  }

  const std::string engine = json::GetString(root.Find("engine"), "muxwise");
  if (!ParseEngine(engine, &spec.engine)) {
    result.error = source + ": engine: unknown engine \"" + engine + "\"";
    return result;
  }

  std::int64_t threads = 1;
  if (!ParseDeployment(root, spec, ctx) ||
      !GetInteger(root, "(root)", "threads", false, 1, &threads, ctx) ||
      !ParseTrace(root, spec, ctx) || !ParseSlo(root, spec, ctx) ||
      !ParseRun(root, spec, ctx) || !ParseOverload(root, spec, ctx) ||
      !ParseFleet(root, spec, ctx) || !ParseFaults(root, spec, ctx) ||
      !ParseRecovery(root, spec, ctx)) {
    result.error = ctx.error;
    return result;
  }
  if (threads < 1 || threads > 64) {
    result.error = source + ": threads: out of range [1, 64]";
    return result;
  }
  spec.config.threads = static_cast<int>(threads);

  if (spec.IsStreaming() && spec.config.threads != 1) {
    result.error = source +
                   ": threads: streaming scenarios are sequential-only "
                   "(threads must be 1)";
    return result;
  }

  result.spec = std::move(spec);
  return result;
}

ScenarioParseResult LoadScenarioFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ScenarioParseResult result;
    result.error = path + ": cannot open scenario file";
    return result;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseScenarioJson(buffer.str(), path);
}

workload::Trace BuildScenarioTrace(const ScenarioSpec& spec) {
  MUX_CHECK(!spec.IsStreaming());
  if (spec.mmpp.has_value()) {
    return workload::GenerateMmppTrace(*spec.mmpp, spec.mmpp_seed);
  }
  MUX_CHECK(!spec.mix.empty());
  if (spec.mix.size() == 1) {
    // A single leg bypasses MergeTraces (which renumbers ids), so a
    // one-part mix reproduces the hand-coded GenerateTrace call
    // bit-for-bit.
    const TraceMixPart& part = spec.mix.front();
    return workload::GenerateTrace(part.dataset, part.requests,
                                   part.rate_per_second, part.seed);
  }
  std::vector<workload::Trace> parts;
  parts.reserve(spec.mix.size());
  for (const TraceMixPart& part : spec.mix) {
    parts.push_back(workload::GenerateTrace(part.dataset, part.requests,
                                            part.rate_per_second, part.seed));
  }
  return workload::MergeTraces(spec.name, std::move(parts));
}

RunOutcome RunScenario(const ScenarioSpec& spec) {
  MUX_CHECK(!spec.IsStreaming());
  const serve::Deployment deployment = MakeDeployment(spec);
  const workload::Trace trace = BuildScenarioTrace(spec);
  return RunWorkload(spec.engine, deployment, trace, &CachedEstimator(spec),
                     spec.config);
}

StreamingOutcome RunStreamingScenario(const ScenarioSpec& spec) {
  MUX_CHECK(spec.IsStreaming());
  const serve::Deployment deployment = MakeDeployment(spec);
  return RunStreamingWorkload(spec.engine, deployment, *spec.streaming,
                              &CachedEstimator(spec), spec.config);
}

}  // namespace muxwise::harness
