#ifndef MUXWISE_HARNESS_STREAMING_H_
#define MUXWISE_HARNESS_STREAMING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.h"
#include "serve/metrics.h"
#include "serve/quantile_sketch.h"

namespace muxwise::harness {

/** Clamped-exponential token-length distribution for synthetic streams:
 * min + Exp(mean - min), truncated at max. */
struct StreamingLengths {
  std::int64_t min = 8;
  double mean = 32.0;
  std::int64_t max = 128;
};

/**
 * A million-request-scale synthetic workload, generated lazily: the
 * driver holds ONE pending arrival event and the in-flight request
 * specs — never the whole trace — so memory is O(in-flight), not
 * O(total_requests). Requests are single-turn with Poisson arrivals;
 * lengths are deterministic in `seed`.
 */
struct StreamingSpec {
  std::uint64_t total_requests = 1'000'000;
  double rate_per_second = 100.0;
  StreamingLengths input{8, 32.0, 128};
  StreamingLengths output{2, 6.0, 16};
  std::uint64_t seed = 1;

  /**
   * Deterministic 1-in-K exact TTFT subsample (by request index) kept
   * alongside the sketch, sized for the sketch-vs-exact accuracy gate
   * (10^7 requests / 100 = 10^5 doubles). 0 disables the subsample.
   */
  std::uint64_t exact_subsample_period = 100;
};

/** What the streaming driver reports; the nightly smoke gates on it. */
struct StreamingOutcome {
  std::string engine;
  std::uint64_t total = 0;
  std::uint64_t completed = 0;
  bool stable = true;
  std::string diagnostic;

  serve::LatencySummary ttft;
  serve::LatencySummary tbt;
  serve::LatencySummary e2e;

  /** Full-population TTFT sketch (the accuracy gate's subject). */
  serve::QuantileSketch ttft_sketch;

  /** Exact 1-in-K TTFT samples (ms), in completion order. */
  std::vector<double> ttft_subsample_ms;

  /** Canonical sketch-state witness (see RunOutcome). */
  std::uint64_t metrics_state_digest = 0;
  bool metrics_overflowed = false;

  std::uint64_t event_digest = 0;
  std::size_t executed_events = 0;

  /** High-water mark of simultaneously in-flight request specs. */
  std::size_t peak_in_flight = 0;

  /** Bytes held by every metric sketch at end of run — the O(1)
   * metric-memory witness the nightly smoke asserts on. */
  std::size_t metric_bytes = 0;
};

/**
 * Drives `spec.total_requests` synthetic requests through an engine
 * built by MakeEngine, feeding completions straight into a sketch-backed
 * MetricsCollector. Arrivals self-schedule (each injects the next), so
 * the simulator queue and driver state stay O(in-flight) at any scale.
 * Sequential event loop only (config.threads must be 1); respects
 * config.event_budget as the livelock guard.
 */
StreamingOutcome RunStreamingWorkload(
    EngineKind kind, const serve::Deployment& deployment,
    const StreamingSpec& spec,
    const core::ContentionEstimator* shared_estimator,
    const RunConfig& config = RunConfig());

}  // namespace muxwise::harness

#endif  // MUXWISE_HARNESS_STREAMING_H_
