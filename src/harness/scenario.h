#ifndef MUXWISE_HARNESS_SCENARIO_H_
#define MUXWISE_HARNESS_SCENARIO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/runner.h"
#include "harness/streaming.h"
#include "workload/datasets.h"

namespace muxwise::harness {

/**
 * Declarative scenario DSL: one JSON file describes everything a run
 * needs — engine, deployment shape, trace composition (dataset mix,
 * MMPP phases, or a synthetic stream), SLO targets, overload / fleet /
 * fault configuration, and the event-loop thread count — so new
 * end-to-end scenarios are data, not recompiled C++. The parser is
 * strict: unknown keys, unknown enum spellings, and malformed values
 * are reported with the offending path rather than silently defaulted,
 * because a typo that half-applies a scenario would still produce a
 * digest — just not the one the matrix pinned.
 *
 * Schema (all sections except "name" and "trace" optional):
 *
 *   {
 *     "name": "overload-mmpp-burst",
 *     "engine": "muxwise",             // muxwise|chunked|nanoflow|
 *                                      // sglang-pd|loongserve|
 *                                      // windserve|temporal
 *     "deployment": {"model": "Llama-70B", "gpu": "A100", "num_gpus": 8},
 *     "threads": 1,
 *     "trace": {
 *       "mix": [ {"dataset": "sharegpt", "requests": 30,
 *                 "rate_per_second": 2.0, "seed": 901} ]
 *       // or "mmpp": { dataset, calm_rate_per_second, burst_multiplier,
 *       //              mean_calm_seconds, mean_burst_seconds,
 *       //              duration_seconds, class_mix: [i, s, b], seed }
 *       // or "streaming": { requests, rate_per_second,
 *       //                   input_tokens: {min, mean, max},
 *       //                   output_tokens: {min, mean, max}, seed,
 *       //                   exact_subsample_period }
 *     },
 *     "slo": {"ttft_ms": 500, "tbt_ms": 100, "ttft_per_token_us": 400,
 *             "percentile": 0.99},
 *     "run": {"drain_timeout_seconds": 600, "steady_state": false,
 *             "event_budget": 100000000, "token_budget": 0},
 *     "overload": {"enabled": true},
 *     "fleet": {"enabled": true, "replicas": 4, "failover": true,
 *               "migration": true,
 *               // Health policy (all optional; defaults in HealthPolicy):
 *               "heartbeat_ms": 500, "suspect_after_misses": 1,
 *               "down_after_misses": 2, "recovery_probation_beats": 2,
 *               "suspect_exit_beats": 1, "zombie_detection": true,
 *               "zombie_after_beats": 2, "zombie_down_beats": 4,
 *               "partition_detection": true},
 *     "faults": {
 *       "seed": 257,
 *       "crashes": [{"instance": 1, "at_seconds": 30,
 *                    "recover_at_seconds": 45}],   // omit to never recover
 *       "stragglers": [{"instance": 0, "from_seconds": 10,
 *                       "to_seconds": 20, "slowdown": 2.0}],
 *       "transfer_drops": [{"from_seconds": 0, "to_seconds": 120,
 *                           "probability": 0.01}],
 *       // Grey failures: heartbeats answer, work stalls ("zombies"),
 *       // links wink in and out ("flaps", link: true targets the
 *       // fleet host link), capacity silently shrinks ("degrades"),
 *       // and one direction of router<->replica traffic drops
 *       // ("partitions" — both directions would be a crash).
 *       "zombies": [{"instance": 0, "from_seconds": 10,
 *                    "to_seconds": 20}],
 *       "flaps": [{"instance": 0, "link": false, "from_seconds": 10,
 *                  "to_seconds": 20, "period_seconds": 2,
 *                  "duty_up": 0.5}],
 *       "degrades": [{"instance": 0, "link": false, "from_seconds": 10,
 *                     "to_seconds": 20, "flops_factor": 0.5,
 *                     "bandwidth_factor": 0.5}],
 *       "partitions": [{"instance": 0, "from_seconds": 10,
 *                       "to_seconds": 20, "drop_to_replica": false,
 *                       "drop_from_replica": true}]
 *     },
 *     "recovery": {"enabled": true}
 *   }
 */

/** One dataset leg of a scenario's "trace.mix". */
struct TraceMixPart {
  workload::Dataset dataset = workload::Dataset::kShareGpt;
  int requests = 0;
  double rate_per_second = 1.0;
  std::uint64_t seed = 1;
};

/** A fully parsed scenario, ready to build and run. */
struct ScenarioSpec {
  std::string name;
  EngineKind engine = EngineKind::kMuxWise;

  std::string model = "Llama-70B";
  std::string gpu = "A100";
  int num_gpus = 8;

  // Exactly one trace shape is populated (the parser enforces it).
  std::vector<TraceMixPart> mix;
  std::optional<workload::MmppOptions> mmpp;
  std::uint64_t mmpp_seed = 1;
  std::optional<StreamingSpec> streaming;

  /** SLO overrides; absent keeps the deployment's model defaults. */
  std::optional<workload::SloTargets> slo;

  /**
   * Harness knobs assembled by the parser: threads, drain timeout,
   * event budget, overload policy, fleet routing, fault plan, recovery.
   */
  RunConfig config;

  bool IsStreaming() const { return streaming.has_value(); }
};

/** Parse outcome: a spec, or a source-qualified error message. */
struct ScenarioParseResult {
  std::optional<ScenarioSpec> spec;
  std::string error;

  bool ok() const { return spec.has_value(); }
};

/** Parses one scenario document; `source` labels error messages. */
ScenarioParseResult ParseScenarioJson(const std::string& text,
                                      const std::string& source);

/** Reads and parses a scenario file. */
ScenarioParseResult LoadScenarioFile(const std::string& path);

/**
 * Materializes the scenario's trace (mix or MMPP shapes; fatal on a
 * streaming spec, whose arrivals are generated lazily — see
 * RunStreamingWorkload).
 */
workload::Trace BuildScenarioTrace(const ScenarioSpec& spec);

/**
 * Builds the deployment (ByName lookups + SLO overrides) and replays
 * the scenario through RunWorkload. Contention estimators are profiled
 * once per (model, gpu, num_gpus) and cached for the process lifetime,
 * so matrix runs re-use them across repeats and thread counts. Fatal on
 * a streaming spec.
 */
RunOutcome RunScenario(const ScenarioSpec& spec);

/** Drives a streaming scenario (fatal on a non-streaming spec). */
StreamingOutcome RunStreamingScenario(const ScenarioSpec& spec);

}  // namespace muxwise::harness

#endif  // MUXWISE_HARNESS_SCENARIO_H_
