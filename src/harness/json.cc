#include "harness/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace muxwise::harness::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(Value& out, std::string& error) {
    if (!ParseValue(out)) {
      error = error_.empty() ? "malformed JSON" : error_;
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      error = "trailing content after JSON document";
      return false;
    }
    return true;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(const std::string& what) {
    error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseValue(Value& out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out.type = Value::Type::kString;
      return ParseString(out.string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.type = Value::Type::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.type = Value::Type::kBool;
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out.type = Value::Type::kNull;
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(Value& out) {
    out.type = Value::Type::kObject;
    if (!Consume('{')) return false;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(key)) return false;
      if (!Consume(':')) return false;
      Value value;
      if (!ParseValue(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseArray(Value& out) {
    out.type = Value::Type::kArray;
    if (!Consume('[')) return false;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Value value;
      if (!ParseValue(value)) return false;
      out.array.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

  bool ParseString(std::string& out) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
            // Our writers only emit \u00xx control escapes; decode the
            // low byte and drop the (always-zero) high byte.
            const std::string hex = text_.substr(pos_ + 2, 2);
            out.push_back(static_cast<char>(
                std::strtol(hex.c_str(), nullptr, 16)));
            pos_ += 4;
            break;
          }
          default:
            return Fail("unknown escape");
        }
        continue;
      }
      out.push_back(c);
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Value& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected number");
    out.type = Value::Type::kNumber;
    out.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                             nullptr);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

const Value* Value::Find(const std::string& key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Parse(const std::string& text, Value& out, std::string& error) {
  return Parser(text).Parse(out, error);
}

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

std::string DumpNumber(double number) {
  // Integral values print without a decimal point (scenario files are
  // written by hand with "30", not "30.0" — round-tripping should not
  // reformat them); everything else round-trips through %.17g.
  const auto integral = static_cast<long long>(number);
  if (static_cast<double>(integral) == number && number > -1e15 &&
      number < 1e15) {
    return std::to_string(integral);
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", number);
  return buf;
}

void DumpTo(const Value& v, int indent, int depth, std::string& out) {
  const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (v.type) {
    case Value::Type::kNull:
      out += "null";
      return;
    case Value::Type::kBool:
      out += v.boolean ? "true" : "false";
      return;
    case Value::Type::kNumber:
      out += DumpNumber(v.number);
      return;
    case Value::Type::kString:
      out += '"';
      out += Escape(v.string);
      out += '"';
      return;
    case Value::Type::kArray: {
      if (v.array.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        out += pad;
        DumpTo(v.array[i], indent, depth + 1, out);
        if (i + 1 < v.array.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      return;
    }
    case Value::Type::kObject: {
      if (v.object.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < v.object.size(); ++i) {
        out += pad;
        out += '"';
        out += Escape(v.object[i].first);
        out += "\": ";
        DumpTo(v.object[i].second, indent, depth + 1, out);
        if (i + 1 < v.object.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string Dump(const Value& v, int indent) {
  std::string out;
  DumpTo(v, indent, 0, out);
  return out;
}

double GetNumber(const Value* v, double fallback) {
  return v != nullptr && v->type == Value::Type::kNumber ? v->number
                                                         : fallback;
}

std::string GetString(const Value* v, const std::string& fallback) {
  return v != nullptr && v->type == Value::Type::kString ? v->string
                                                         : fallback;
}

bool GetBool(const Value* v, bool fallback) {
  return v != nullptr && v->type == Value::Type::kBool ? v->boolean
                                                       : fallback;
}

}  // namespace muxwise::harness::json
