#include "harness/streaming.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <utility>

#include "check/invariant_registry.h"
#include "kv/token_seq.h"
#include "serve/engine.h"
#include "serve/request.h"
#include "sim/logging.h"
#include "sim/simulator.h"
#include "workload/request_spec.h"

namespace muxwise::harness {

namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t MixDigest(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

/** Uniform in (0, 1]: counter-based, so request i's draws never depend
 * on how many draws earlier requests made. */
double U01(std::uint64_t seed, std::uint64_t tag, std::uint64_t index) {
  const std::uint64_t bits = SplitMix64(SplitMix64(seed ^ tag) ^ index);
  return (static_cast<double>(bits >> 11) + 1.0) * 0x1.0p-53;
}

std::int64_t SampleLength(const StreamingLengths& lengths, std::uint64_t seed,
                          std::uint64_t tag, std::uint64_t index) {
  const double excess = std::max(0.0,
                                 lengths.mean - static_cast<double>(lengths.min));
  const double draw = -std::log(U01(seed, tag, index)) * excess;
  const std::int64_t value =
      lengths.min + static_cast<std::int64_t>(draw);
  return std::clamp<std::int64_t>(value, std::max<std::int64_t>(1, lengths.min),
                                  std::max<std::int64_t>(1, lengths.max));
}

constexpr std::uint64_t kArrivalTag = 0x61727269;  // "arri"
constexpr std::uint64_t kInputTag = 0x696e7075;    // "inpu"
constexpr std::uint64_t kOutputTag = 0x6f757470;   // "outp"

/**
 * Lazily generates and injects the stream: exactly one arrival event is
 * pending at any time (each injection schedules the next), and a spec
 * lives only from injection to completion. All O(total) state — the
 * materialized trace, the full-sample latency vectors — is gone; what
 * remains is bounded by the engine's in-flight window.
 */
class StreamingDriver {
 public:
  StreamingDriver(sim::Simulator* simulator, serve::Engine* engine,
                  serve::MetricsCollector* metrics, const StreamingSpec& spec,
                  StreamingOutcome* outcome)
      : sim_(simulator),
        engine_(engine),
        metrics_(metrics),
        spec_(spec),
        outcome_(outcome) {
    engine_->set_on_complete([this](std::unique_ptr<serve::Request> request) {
      OnComplete(std::move(request));
    });
  }

  void Start() {
    if (spec_.total_requests == 0) return;
    AdvanceArrival();
    ScheduleNext();
  }

  std::uint64_t terminal() const { return terminal_; }
  std::size_t in_flight() const { return in_flight_.size(); }

 private:
  void AdvanceArrival() {
    const double u = U01(spec_.seed, kArrivalTag, next_index_);
    next_arrival_seconds_ += -std::log(u) / spec_.rate_per_second;
  }

  void ScheduleNext() {
    const sim::Time when = std::max(
        sim_->Now(), sim::Seconds(next_arrival_seconds_));
    sim_->ScheduleAt(when, [this] { Inject(); });
  }

  void Inject() {
    const std::uint64_t index = next_index_++;
    auto spec = std::make_unique<workload::RequestSpec>();
    spec->id = static_cast<std::int64_t>(index) + 1;
    spec->arrival_seconds = next_arrival_seconds_;
    spec->session = spec->id;  // Single-turn: one session per request.
    spec->session_seq = 0;
    // Stream ids start at 1: stream 0 is the shared system-prompt
    // stream, and distinct streams share no prefix — so the radix tree
    // and KV pool see 10^7 distinct contexts, never a 10^7-wide match.
    const std::int64_t stream = spec->id;
    const std::int64_t input =
        SampleLength(spec_.input, spec_.seed, kInputTag, index);
    const std::int64_t output =
        SampleLength(spec_.output, spec_.seed, kOutputTag, index);
    spec->prompt = {kv::TokenSpan{stream, 0, input}};
    spec->full_seq = {kv::TokenSpan{stream, 0, input + output}};
    spec->input_tokens = input;
    spec->reused_tokens = 0;
    spec->output_tokens = output;

    auto request = std::make_unique<serve::Request>(spec.get());
    request->arrival = sim_->Now();
    in_flight_.emplace(spec->id, std::move(spec));
    outcome_->peak_in_flight =
        std::max(outcome_->peak_in_flight, in_flight_.size());
    engine_->Enqueue(std::move(request));

    if (next_index_ < spec_.total_requests) {
      AdvanceArrival();
      ScheduleNext();
    }
  }

  void OnComplete(std::unique_ptr<serve::Request> request) {
    const std::int64_t id = request->spec->id;
    ++terminal_;
    ReportProgress();
    metrics_->OnRequestComplete(*request);
    if (spec_.exact_subsample_period > 0 && request->first_token >= 0 &&
        static_cast<std::uint64_t>(id - 1) % spec_.exact_subsample_period ==
            0) {
      outcome_->ttft_subsample_ms.push_back(
          sim::ToMilliseconds(request->Ttft()));
    }
    request.reset();  // Drop the engine-side state before the spec.
    const std::size_t erased = in_flight_.erase(id);
    MUX_CHECK(erased == 1);
  }

  /**
   * Optional wall-clock progress on stderr, every
   * $MUXWISE_STREAMING_PROGRESS completions. Diagnostic only — prints
   * nothing unless the variable is set, and never touches simulation
   * state, so digests are unaffected.
   */
  void ReportProgress() {
    static const long window = [] {
      const char* env = std::getenv("MUXWISE_STREAMING_PROGRESS");
      return env != nullptr ? std::atol(env) : 0;
    }();
    if (window <= 0 || terminal_ % static_cast<std::uint64_t>(window) != 0) {
      return;
    }
    // Wall-clock is acceptable here: diagnostic stderr only, never
    // observable by the simulation.
    const auto now = std::chrono::steady_clock::now();  // muxlint: allow(wall-clock)
    if (last_progress_.time_since_epoch().count() != 0) {
      const double secs =
          std::chrono::duration<double>(now - last_progress_).count();  // muxlint: allow(wall-clock)
      std::fprintf(stderr, "[streaming] %llu done, window %.2fs\n",
                   static_cast<unsigned long long>(terminal_), secs);
    }
    last_progress_ = now;
  }

  sim::Simulator* sim_;
  serve::Engine* engine_;
  serve::MetricsCollector* metrics_;
  const StreamingSpec spec_;
  StreamingOutcome* outcome_;

  std::chrono::steady_clock::time_point last_progress_{};  // muxlint: allow(wall-clock)
  std::uint64_t next_index_ = 0;
  double next_arrival_seconds_ = 0.0;
  std::uint64_t terminal_ = 0;
  std::unordered_map<std::int64_t, std::unique_ptr<workload::RequestSpec>>
      in_flight_;
};

}  // namespace

StreamingOutcome RunStreamingWorkload(
    EngineKind kind, const serve::Deployment& deployment,
    const StreamingSpec& spec,
    const core::ContentionEstimator* shared_estimator,
    const RunConfig& config) {
  MUX_CHECK(config.threads == 1);
  MUX_CHECK(spec.rate_per_second > 0.0);

  sim::Simulator simulator;
  StreamingOutcome outcome;
  outcome.engine = EngineKindName(kind);
  outcome.total = spec.total_requests;
  if (spec.exact_subsample_period > 0) {
    outcome.ttft_subsample_ms.reserve(
        static_cast<std::size_t>(spec.total_requests /
                                 spec.exact_subsample_period) +
        1);
  }

  EngineInstance instance =
      MakeEngine(kind, &simulator, deployment, shared_estimator, config);
  if (instance.muxwise != nullptr) {
    // One PartitionSample lands per scheduling decision; at streaming
    // scale that is an unbounded vector, so keep only an illustrative
    // prefix (the driver never reads the trace anyway).
    instance.muxwise->set_partition_trace_capacity(4096);
  }
  serve::MetricsCollector metrics(deployment.slo);
  StreamingDriver driver(&simulator, instance.engine.get(), &metrics, spec,
                         &outcome);
  driver.Start();

  // Arrivals self-schedule, so "drained" really is "done": the queue
  // only empties once the last request reached a terminal state (or the
  // engine stalled, which leaves the queue empty too — the completion
  // count below distinguishes the two).
  std::size_t executed = 0;
  while (!simulator.Empty() && executed < config.event_budget) {
    simulator.Step();
    ++executed;
  }
  if (!simulator.Empty()) {
    outcome.diagnostic =
        "event budget of " + std::to_string(config.event_budget) +
        " exhausted at " + sim::FormatDuration(simulator.Now()) + " with " +
        std::to_string(simulator.PendingEvents()) +
        " events still pending; livelocked scheduler?";
  } else if (driver.terminal() != spec.total_requests) {
    outcome.diagnostic =
        "stream stalled: " +
        std::to_string(spec.total_requests - driver.terminal()) + " of " +
        std::to_string(spec.total_requests) +
        " requests never reached a terminal state";
  }
  outcome.stable = outcome.diagnostic.empty();
  outcome.completed = metrics.Split().attained;

  outcome.ttft = metrics.Ttft();
  outcome.tbt = metrics.Tbt();
  outcome.e2e = metrics.E2e();
  outcome.ttft_sketch = metrics.ttft_sketch();

  // Same canonical sketch-state fold as RunWorkload (order-invariant).
  {
    std::uint64_t digest = 0x243f6a8885a308d3ULL;
    bool overflowed = false;
    std::size_t bytes = 0;
    auto fold = [&](const serve::QuantileSketch& sketch) {
      digest = MixDigest(digest, sketch.StateDigest());
      overflowed = overflowed || sketch.overflowed();
      bytes += sketch.MemoryBytes();
    };
    fold(metrics.ttft_sketch());
    fold(metrics.ttft_per_token_sketch());
    fold(metrics.tbt_sketch());
    fold(metrics.tpot_sketch());
    fold(metrics.e2e_sketch());
    for (int rank = 0; rank < workload::kNumSloClasses; ++rank) {
      const serve::ClassMetrics& slice =
          metrics.ClassSlice(static_cast<workload::SloClass>(rank));
      fold(slice.queue_delay);
      fold(slice.ttft);
    }
    outcome.metrics_state_digest = digest;
    outcome.metrics_overflowed = overflowed;
    outcome.metric_bytes = bytes;
  }

  outcome.event_digest = simulator.EventDigest();
  outcome.executed_events = simulator.ExecutedEvents();

  if (outcome.stable) {
    check::InvariantRegistry registry;
    simulator.RegisterAudits(registry);
    instance.engine->RegisterAudits(registry);
    metrics.RegisterAudits(registry);
    const std::vector<check::Violation> violations = registry.RunAll();
    if (!violations.empty()) {
      sim::Panic("invariant audit failed at stream end:\n" +
                 check::FormatViolations(violations));
    }
  }
  return outcome;
}

}  // namespace muxwise::harness
