#ifndef MUXWISE_HARNESS_RUNNER_H_
#define MUXWISE_HARNESS_RUNNER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/muxwise_engine.h"
#include "fault/fault_plan.h"
#include "fault/recovery.h"
#include "obs/trace.h"
#include "overload/controller.h"
#include "route/fleet_router.h"
#include "serve/deployment.h"
#include "serve/frontend.h"
#include "serve/metrics.h"
#include "sim/parallel_simulator.h"
#include "sim/simulator.h"
#include "workload/request_spec.h"

namespace muxwise::baselines {
class ChunkedPrefillEngine;
class StaticDisaggEngine;
class LoongServeEngine;
}  // namespace muxwise::baselines

namespace muxwise::harness {

/** Every serving system implemented in this repository. */
enum class EngineKind {
  kMuxWise,
  kChunked,
  kNanoFlow,
  kSglangPd,
  kLoongServe,
  kWindServe,   // §6 prototype: unmanaged-stream multiplexing.
  kTemporal,    // §6 prototype: temporal-only layered multiplexing.
};

const char* EngineKindName(EngineKind kind);

/** Per-run knobs (defaults reproduce the paper's configurations). */
struct RunConfig {
  /** Chunked/NanoFlow token budget; 0 tunes offline for the TBT SLO. */
  int token_budget = 0;

  /** MuxWise option overrides (ablations). */
  std::optional<core::MuxWiseEngine::Options> muxwise_options;

  /**
   * Simulated-time cap after the last arrival; a run that cannot drain
   * within it is reported unstable (paper: "the serving system becomes
   * unstable"). Seconds.
   */
  double drain_timeout_seconds = 600.0;

  /**
   * Steady-state mode (goodput sweeps): the drain allowance shrinks to
   * max(30 s, 35% of the arrival span), so a run that merely queues up
   * work and drains it long after arrivals stop counts as unstable.
   */
  bool steady_state = false;

  /**
   * Hard cap on executed events per drive phase — the guard that turns a
   * livelocked scenario (zero-delay event loop that never advances time)
   * into a diagnosed, terminating run instead of a hang. Generously above
   * any legitimate scenario in the suite.
   */
  std::size_t event_budget = 100'000'000;

  /**
   * Chaos schedule; when set, recovery is forced on and a FaultInjector
   * delivers the plan against the engine's fault domains.
   */
  std::optional<fault::FaultPlan> fault_plan;

  /**
   * Engine-side recovery knobs (deadlines, shed factor, retry budgets).
   * `recovery.enabled` is implied by `fault_plan`; set it explicitly to
   * exercise recovery paths (shedding, deadlines) without any fault.
   */
  fault::RecoveryPolicy recovery;

  /**
   * Overload-control policy (MuxWise-family engines only; baselines
   * ignore it). When `overload.enabled` is set it overrides the policy
   * in `muxwise_options`, replacing the blunt shed_demand_factor cutoff
   * with SLO-class admission, brownout modes, and KV-spill preemption.
   */
  overload::Policy overload;

  /**
   * Fleet routing (MuxWise-family engines only): when `fleet.enabled`,
   * the run constructs `fleet.replicas` MuxWiseEngine instances behind
   * a route::FleetRouter instead of one engine — cache-affinity
   * dispatch, health-tracked failover with session re-homing, and the
   * fleet degradation ladder. Fault-plan instances then map onto
   * replicas (one fault domain per replica). Disabled (the default)
   * leaves every engine's event stream bit-identical to pre-fleet
   * builds.
   */
  route::FleetOptions fleet;

  /**
   * When set, the engine (and the fault injector, if any) are
   * instrumented into this recorder. Tracing never schedules events or
   * alters behaviour, so the simulated event stream — and its digest —
   * is identical with or without a recorder attached.
   */
  obs::TraceRecorder* trace = nullptr;

  /**
   * Event-loop threading. 1 (the default) drives the plain sequential
   * simulator, bit-identical to every pre-parallel build. N > 1 hosts
   * the same scenario on the parallel kernel's single-shard sequential
   * fast path — the event loop executes on a worker thread with
   * mutex-ordered hand-offs, preserving the event stream and every
   * digest bit-for-bit while proving under TSan that engine state is
   * shard-confined. (Engines run against one simulator, so harness
   * scenarios stay single-shard; multi-shard windowed execution is
   * exercised by tests/test_parallel_sim.cc and simcore.parallel.)
   */
  int threads = 1;
};

/**
 * One constructed serving engine plus typed views into it. The engine
 * pointer owns the instance; exactly one of the typed views is non-null
 * (which one depends on the EngineKind and on RunConfig::fleet), giving
 * callers access to engine-specific reporting surfaces — utilization,
 * cache hit rates, preemption counts — without downcasting.
 */
struct EngineInstance {
  std::unique_ptr<serve::Engine> engine;
  core::MuxWiseEngine* muxwise = nullptr;
  route::FleetRouter* fleet = nullptr;
  baselines::ChunkedPrefillEngine* chunked = nullptr;
  baselines::StaticDisaggEngine* disagg = nullptr;
  baselines::LoongServeEngine* loong = nullptr;
};

/**
 * Builds the engine RunWorkload would run `kind` on, wired to
 * `simulator`: recovery policy resolved (a fault plan implies it),
 * overload policy and fleet routing applied per `config`. Shared with
 * the streaming driver, which feeds an engine directly instead of
 * replaying a materialized trace through a Frontend.
 */
EngineInstance MakeEngine(EngineKind kind, sim::Simulator* simulator,
                          const serve::Deployment& deployment,
                          const core::ContentionEstimator* shared_estimator,
                          const RunConfig& config);

/** Everything the paper's tables/figures report about one run. */
struct RunOutcome {
  std::string engine;
  bool stable = true;           // All requests completed in time.
  std::size_t completed = 0;
  std::size_t total = 0;

  serve::LatencySummary ttft;
  serve::LatencySummary tbt;
  serve::LatencySummary tpot;
  serve::LatencySummary e2e;
  serve::LatencySummary ttft_per_token;

  /** Per-token TTFT population (ms) for CDF plots — a bounded sketch
   * instead of raw samples, exact below its exact-tier capacity. */
  serve::QuantileSketch ttft_per_token_sketch;

  /**
   * Order-invariant digest over every metric sketch's state, and
   * whether any population spilled past the exact tier. Folded into
   * OutcomeDigest only when `metrics_overflowed` — below the capacity
   * the latency summaries already pin the full population bit-for-bit,
   * so historical digests stay untouched; past it the summaries
   * quantise and the sketch state itself becomes the witness.
   */
  std::uint64_t metrics_state_digest = 0;
  bool metrics_overflowed = false;

  double tbt_attainment = 0.0;  // Fraction of gaps within the target.
  bool meets_slo = false;

  double token_throughput = 0.0;  // (input+output) tokens / s.
  double request_throughput = 0.0;

  /** SM-utilization percentages; disaggregated engines report P and D. */
  std::vector<double> gpu_utilization;

  double bubble_ratio = 0.0;    // MuxWise / chunked streams (§4.4.2).
  double cache_hit_rate = 0.0;  // Token-weighted, where applicable.
  std::size_t preemptions = 0;
  std::vector<core::MuxWiseEngine::PartitionSample> partition_trace;

  /**
   * Terminal disposition of every request: attained goodput plus the
   * degraded outcomes (timed-out / shed / crash-failed). In fault-free
   * runs `split.attained == completed` and the rest are zero.
   */
  serve::GoodputSplit split;

  /**
   * Per-SLO-class slices of the split, with queue-delay p99 and TTFT
   * attainment — the overload-control report card (indexed by
   * SloClassRank). All-standard traces leave the interactive and batch
   * slices empty, and the digest then ignores these fields.
   */
  std::array<serve::ClassMetrics, workload::kNumSloClasses> per_class;

  /** True when any request carried a non-standard SLO class. */
  bool has_class_mix = false;

  // Overload-control activity (MuxWise-family engines; zero elsewhere
  // and in disabled runs — folded into the digest only when active).
  bool overload_active = false;
  std::size_t overload_mode_transitions = 0;
  std::size_t kv_spills = 0;
  std::size_t kv_recomputes = 0;
  std::size_t kv_restores = 0;

  /**
   * Fleet-routing activity (RunConfig::fleet.enabled runs only; the
   * stats stay default elsewhere and are folded into the digest only
   * when `fleet_active` — per-class goodput, re-home counts, and the
   * failover-latency summary the fleet report card needs).
   */
  bool fleet_active = false;
  route::FleetStats fleet;

  /**
   * Empty on a run that terminated normally. Non-empty when the drive
   * loop had to cut the scenario off (drain timeout with work still
   * stuck, or event budget exhausted on a livelocked scheduler); the
   * end-of-run invariant audits are skipped for such runs because the
   * engine was interrupted mid-flight.
   */
  std::string diagnostic;

  /**
   * Order-sensitive digest of the simulator's executed event stream
   * (sim::Simulator::EventDigest) and its length. Two runs of the same
   * scenario must agree on both — the reproducibility witness that
   * VerifyDeterminism compares.
   */
  std::uint64_t event_digest = 0;
  std::size_t executed_events = 0;
};

/**
 * Hashes the observable results of a run (completion counts, latency
 * summaries, throughputs, and the event-stream digest) into one value
 * for cheap equality comparison across repeated runs.
 */
std::uint64_t OutcomeDigest(const RunOutcome& outcome);

/** What DriveScenario observed while running a scenario to its end. */
struct DriveResult {
  /** All requests reached a terminal state within the drain horizon. */
  bool stable = false;

  /** Empty on termination; else why the run was cut off (see RunOutcome). */
  std::string diagnostic;
};

/**
 * Drives an already-started scenario (frontend arrivals scheduled)
 * under `config`'s bounds: events run until the drain horizon after the
 * last arrival, then — if work remains — through one bounded backlog
 * drain so partial statistics survive. Both phases respect
 * `config.event_budget`, so a livelocked engine terminates with a
 * diagnostic rather than hanging the process (the enforcement behind
 * RunConfig::drain_timeout_seconds).
 */
DriveResult DriveScenario(sim::Simulator& simulator,
                          const serve::Frontend& frontend,
                          const workload::Trace& trace,
                          const RunConfig& config = RunConfig());

/** The same drive loop over the sharded parallel kernel. */
DriveResult DriveScenario(sim::ParallelSimulator& simulator,
                          const serve::Frontend& frontend,
                          const workload::Trace& trace,
                          const RunConfig& config = RunConfig());

/**
 * Replays `trace` through the chosen engine on a fresh simulator.
 * `shared_estimator` (required for MuxWise-family engines) is the
 * deployment's offline-profiled estimator; the engine copies it.
 */
RunOutcome RunWorkload(EngineKind kind, const serve::Deployment& deployment,
                       const workload::Trace& trace,
                       const core::ContentionEstimator* shared_estimator,
                       const RunConfig& config = RunConfig());

/** One point of an SLO-attainment sweep (paper Fig. 15). */
struct SweepPoint {
  double rate_rps = 0.0;
  RunOutcome outcome;
};

/**
 * Replays `requests` with Poisson arrivals at each rate (ascending),
 * stopping after the first rate that is unstable or misses the SLO.
 * The goodput is the highest stable, SLO-meeting rate (0 if none).
 */
struct GoodputResult {
  std::vector<SweepPoint> points;
  double goodput_rps = 0.0;
  std::optional<RunOutcome> at_goodput;
};

GoodputResult SweepGoodput(EngineKind kind,
                           const serve::Deployment& deployment,
                           const workload::Trace& base_trace,
                           const std::vector<double>& rates,
                           const core::ContentionEstimator* shared_estimator,
                           const RunConfig& config = RunConfig(),
                           std::uint64_t arrival_seed = 2024);

/** Result of replaying one scenario twice (see VerifyDeterminism). */
struct DeterminismReport {
  bool deterministic = false;
  std::uint64_t first_digest = 0;   // OutcomeDigest of run 1.
  std::uint64_t second_digest = 0;  // OutcomeDigest of run 2.
  std::size_t first_events = 0;
  std::size_t second_events = 0;
  std::string mismatch;  // Empty when deterministic.
};

/**
 * Runs the scenario back-to-back on two fresh simulators and compares
 * the event-stream digests, executed-event counts, and outcome digests.
 * Bit-reproducibility is the property that lets scheduler conclusions
 * transfer from this simulator to real hardware; this is its enforcer.
 */
DeterminismReport VerifyDeterminism(
    EngineKind kind, const serve::Deployment& deployment,
    const workload::Trace& trace,
    const core::ContentionEstimator* shared_estimator,
    const RunConfig& config = RunConfig());

}  // namespace muxwise::harness

#endif  // MUXWISE_HARNESS_RUNNER_H_
