#ifndef MUXWISE_HARNESS_JSON_H_
#define MUXWISE_HARNESS_JSON_H_

#include <string>
#include <utility>
#include <vector>

namespace muxwise::harness::json {

/**
 * Minimal JSON value model + recursive-descent parser, shared by every
 * consumer of the repo's JSON artifacts (benchrun reports, scenario
 * files, smoke-gate outcomes). Scoped to what those documents contain —
 * objects, arrays, strings, doubles, bools, null — deliberately not a
 * general-purpose library.
 */
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  /** Stable-order object representation (insertion order preserved). */
  std::vector<std::pair<std::string, Value>> object;

  /** Member lookup on an object value; nullptr when absent. */
  const Value* Find(const std::string& key) const;

  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
};

/** Parses one JSON document; false + `error` on malformed input. */
bool Parse(const std::string& text, Value& out, std::string& error);

/** Escapes `s` for embedding inside a JSON string literal. */
std::string Escape(const std::string& s);

/**
 * Serializes a value back to JSON text. Deterministic: object members
 * keep insertion order, integral numbers print without a decimal
 * point, and non-integral numbers use shortest-round-trip-safe %.17g —
 * so the same Value always yields byte-identical text (the property
 * chaos repros rely on). `indent` > 0 pretty-prints with that many
 * spaces per level; 0 emits one line.
 */
std::string Dump(const Value& v, int indent = 2);

// Tolerant typed accessors: `v` may be nullptr or of another type, in
// which case the fallback is returned — absent optional fields read as
// their defaults without per-site null checks.
double GetNumber(const Value* v, double fallback = 0.0);
std::string GetString(const Value* v, const std::string& fallback = "");
bool GetBool(const Value* v, bool fallback = false);

}  // namespace muxwise::harness::json

#endif  // MUXWISE_HARNESS_JSON_H_
