#include "harness/runner.h"

#include <algorithm>
#include <bit>
#include <memory>
#include <utility>

#include "baselines/chunked_prefill.h"
#include "check/invariant_registry.h"
#include "baselines/loongserve.h"
#include "baselines/static_disagg.h"
#include "fault/injector.h"
#include "serve/frontend.h"
#include "sim/logging.h"
#include "sim/simulator.h"
#include "workload/datasets.h"

namespace muxwise::harness {

namespace {

bool IsMuxWiseFamily(EngineKind kind) {
  return kind == EngineKind::kMuxWise || kind == EngineKind::kWindServe ||
         kind == EngineKind::kTemporal;
}

/** The run's recovery policy: a fault plan implies recovery is on. */
fault::RecoveryPolicy EffectiveRecovery(const RunConfig& config) {
  fault::RecoveryPolicy policy = config.recovery;
  if (config.fault_plan.has_value()) policy.enabled = true;
  return policy;
}

double UtilPercent(const gpu::Gpu& device, sim::Time end) {
  if (end <= 0) return 0.0;
  return 100.0 * device.SmUtilizationIntegral() / static_cast<double>(end);
}

std::uint64_t MixDigest(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

std::uint64_t MixDigest(std::uint64_t h, double v) {
  return MixDigest(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t MixSummary(std::uint64_t h, const serve::LatencySummary& s) {
  h = MixDigest(h, s.mean_ms);
  h = MixDigest(h, s.p50_ms);
  h = MixDigest(h, s.p99_ms);
  return MixDigest(h, static_cast<std::uint64_t>(s.count));
}

/**
 * Runs every audit the scenario's components registered; aborts on any
 * violation. Called at scenario end, once the event queue has quiesced.
 * When the run was hosted on the parallel kernel, the kernel's audits
 * (which subsume the shard simulators') run in place of the plain
 * simulator's.
 */
void RunScenarioAudits(const sim::Simulator& simulator,
                       const sim::ParallelSimulator* parallel,
                       const serve::Engine& engine,
                       const serve::MetricsCollector& metrics,
                       const fault::FaultInjector* injector) {
  check::InvariantRegistry registry;
  if (parallel != nullptr) {
    parallel->RegisterAudits(registry);
  } else {
    simulator.RegisterAudits(registry);
  }
  engine.RegisterAudits(registry);
  metrics.RegisterAudits(registry);
  if (injector != nullptr) injector->RegisterAudits(registry);
  const std::vector<check::Violation> violations = registry.RunAll();
  if (!violations.empty()) {
    sim::Panic("invariant audit failed at scenario end:\n" +
               check::FormatViolations(violations));
  }
}

/**
 * The drive loop, generic over the event-loop host: `SimT` is either the
 * plain sequential sim::Simulator or the sharded ParallelSimulator. Both
 * expose the same RunUntil/Step/Empty surface with identical semantics
 * (the parallel kernel's merged event stream is bit-identical to the
 * sequential one), so one body serves both and the overloads below are
 * thin dispatchers.
 */
template <typename SimT>
DriveResult DriveScenarioImpl(SimT& simulator, const serve::Frontend& frontend,
                              const workload::Trace& trace,
                              const RunConfig& config) {
  DriveResult result;
  const double last_arrival =
      trace.requests.empty() ? 0.0
                             : trace.requests.back().arrival_seconds;
  double drain = config.drain_timeout_seconds;
  if (config.steady_state) {
    drain = std::min(drain, std::max(30.0, 0.35 * trace.SpanSeconds()));
  }
  const sim::Time horizon = sim::Seconds(last_arrival + drain);
  const std::size_t executed =
      simulator.RunUntil(horizon, config.event_budget);
  if (executed >= config.event_budget && !simulator.Empty()) {
    result.diagnostic =
        "event budget of " + std::to_string(config.event_budget) +
        " exhausted at " + sim::FormatDuration(simulator.Now()) + " with " +
        std::to_string(simulator.PendingEvents()) +
        " events still pending before the drain horizon; livelocked "
        "scheduler?";
    return result;
  }
  result.stable = frontend.AllCompleted();
  if (result.stable) return result;

  // Drain overran the timeout: let the backlog finish for partial
  // statistics (the run is already unstable), but keep the event budget
  // as the livelock guard for this phase too.
  std::size_t backlog_events = 0;
  while (!simulator.Empty() && backlog_events < config.event_budget) {
    simulator.Step();
    ++backlog_events;
  }
  if (!frontend.AllCompleted()) {
    const std::size_t total = trace.requests.size();
    const std::size_t stuck = total - frontend.completed();
    result.diagnostic =
        (simulator.Empty()
             ? std::string("scenario stalled: ")
             : std::string("event budget exhausted while draining: ")) +
        std::to_string(stuck) + " of " + std::to_string(total) +
        " requests never reached a terminal state (drain timeout " +
        std::to_string(static_cast<long long>(drain)) +
        " s past the last arrival)";
  }
  return result;
}

}  // namespace

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMuxWise:
      return "MuxWise";
    case EngineKind::kChunked:
      return "Chunked";
    case EngineKind::kNanoFlow:
      return "NanoFlow";
    case EngineKind::kSglangPd:
      return "SGLang-PD";
    case EngineKind::kLoongServe:
      return "LoongServe";
    case EngineKind::kWindServe:
      return "WindServe*";
    case EngineKind::kTemporal:
      return "Temporal*";
  }
  return "?";
}

DriveResult DriveScenario(sim::Simulator& simulator,
                          const serve::Frontend& frontend,
                          const workload::Trace& trace,
                          const RunConfig& config) {
  return DriveScenarioImpl(simulator, frontend, trace, config);
}

DriveResult DriveScenario(sim::ParallelSimulator& simulator,
                          const serve::Frontend& frontend,
                          const workload::Trace& trace,
                          const RunConfig& config) {
  return DriveScenarioImpl(simulator, frontend, trace, config);
}

EngineInstance MakeEngine(EngineKind kind, sim::Simulator* simulator,
                          const serve::Deployment& deployment,
                          const core::ContentionEstimator* shared_estimator,
                          const RunConfig& config) {
  const fault::RecoveryPolicy policy = EffectiveRecovery(config);
  // Fleet routing replicates MuxWiseEngine; baselines have no replica
  // construction path, so a fleet config on one is a harness misuse.
  MUX_CHECK(!config.fleet.enabled || IsMuxWiseFamily(kind));

  EngineInstance instance;
  if (IsMuxWiseFamily(kind)) {
    MUX_CHECK(shared_estimator != nullptr);
    core::MuxWiseEngine::Options options =
        config.muxwise_options.value_or(core::MuxWiseEngine::Options());
    if (kind == EngineKind::kWindServe) {
      options.mux.mode = core::MultiplexEngine::Mode::kUnmanaged;
    } else if (kind == EngineKind::kTemporal) {
      options.mux.mode = core::MultiplexEngine::Mode::kTemporal;
    }
    options.recovery = policy;
    if (config.overload.enabled) options.overload = config.overload;
    if (config.fleet.enabled) {
      auto owned = std::make_unique<route::FleetRouter>(
          simulator, deployment, *shared_estimator, options, config.fleet);
      instance.fleet = owned.get();
      instance.engine = std::move(owned);
    } else {
      auto owned = std::make_unique<core::MuxWiseEngine>(
          simulator, deployment, *shared_estimator, options);
      instance.muxwise = owned.get();
      instance.engine = std::move(owned);
    }
  } else if (kind == EngineKind::kChunked || kind == EngineKind::kNanoFlow) {
    baselines::ChunkedPrefillEngine::Options options;
    options.token_budget =
        config.token_budget > 0
            ? config.token_budget
            : baselines::ChunkedPrefillEngine::TuneTokenBudget(
                  deployment, deployment.slo.tbt);
    options.nano_overlap = (kind == EngineKind::kNanoFlow);
    options.recovery = policy;
    auto owned = std::make_unique<baselines::ChunkedPrefillEngine>(
        simulator, deployment, options);
    instance.chunked = owned.get();
    instance.engine = std::move(owned);
  } else if (kind == EngineKind::kSglangPd) {
    baselines::StaticDisaggEngine::Options options;
    options.recovery = policy;
    auto owned = std::make_unique<baselines::StaticDisaggEngine>(
        simulator, deployment, options);
    instance.disagg = owned.get();
    instance.engine = std::move(owned);
  } else {
    baselines::LoongServeEngine::Options options;
    options.recovery = policy;
    auto owned = std::make_unique<baselines::LoongServeEngine>(
        simulator, deployment, options);
    instance.loong = owned.get();
    instance.engine = std::move(owned);
  }
  return instance;
}

RunOutcome RunWorkload(EngineKind kind, const serve::Deployment& deployment,
                       const workload::Trace& trace,
                       const core::ContentionEstimator* shared_estimator,
                       const RunConfig& config) {
  MUX_CHECK(config.threads >= 1);
  // threads == 1 keeps the plain sequential simulator (zero-risk path,
  // bit-identical to every earlier build). threads > 1 hosts the same
  // scenario on the parallel kernel's single-shard fast path: the engine
  // drives shard 0, the event loop runs on a worker thread, and the
  // digest below proves the streams match.
  std::optional<sim::ParallelSimulator> parallel;
  std::optional<sim::Simulator> sequential;
  if (config.threads != 1) {
    sim::ParallelSimulator::Options parallel_options;
    parallel_options.shards = 1;
    parallel_options.threads = config.threads;
    parallel.emplace(parallel_options);
  } else {
    sequential.emplace();
  }
  sim::Simulator& simulator = parallel ? parallel->shard(0) : *sequential;
  RunOutcome outcome;
  outcome.engine = EngineKindName(kind);
  outcome.total = trace.requests.size();

  const fault::RecoveryPolicy policy = EffectiveRecovery(config);
  EngineInstance instance =
      MakeEngine(kind, &simulator, deployment, shared_estimator, config);
  serve::Engine* const engine = instance.engine.get();
  core::MuxWiseEngine* const muxwise = instance.muxwise;
  route::FleetRouter* const fleet = instance.fleet;
  baselines::ChunkedPrefillEngine* const chunked = instance.chunked;
  baselines::StaticDisaggEngine* const disagg = instance.disagg;
  baselines::LoongServeEngine* const loong = instance.loong;

  const obs::Tracer tracer(config.trace, &simulator);
  if (tracer.enabled()) engine->AttachTracer(tracer);

  std::optional<fault::FaultInjector> injector;
  if (config.fault_plan.has_value()) {
    injector.emplace(&simulator, *config.fault_plan, policy);
    if (tracer.enabled()) injector->SetTracer(tracer);
    injector->Arm(*engine);
  }

  serve::MetricsCollector metrics(deployment.slo);
  serve::Frontend frontend(&simulator, engine, &trace, &metrics);
  frontend.Start();

  const DriveResult drive =
      parallel ? DriveScenario(*parallel, frontend, trace, config)
               : DriveScenario(simulator, frontend, trace, config);
  outcome.stable = drive.stable;
  outcome.diagnostic = drive.diagnostic;

  outcome.completed = frontend.completed();
  outcome.split = metrics.Split();
  for (int rank = 0; rank < workload::kNumSloClasses; ++rank) {
    outcome.per_class[rank] =
        metrics.ClassSlice(static_cast<workload::SloClass>(rank));
  }
  outcome.has_class_mix = metrics.HasClassMix();
  outcome.ttft = metrics.Ttft();
  outcome.tbt = metrics.Tbt();
  outcome.tpot = metrics.Tpot();
  outcome.e2e = metrics.E2e();
  outcome.ttft_per_token = metrics.TtftPerToken();
  outcome.ttft_per_token_sketch = metrics.ttft_per_token_sketch();
  outcome.tbt_attainment = metrics.TbtAttainment(deployment.slo.tbt);

  // Canonical sketch-state witness over every population the collector
  // keeps (aggregate and per-class): order-invariant by construction,
  // so it is comparable at any merge order or thread count.
  {
    std::uint64_t sketch_digest = 0x243f6a8885a308d3ULL;
    bool overflowed = false;
    auto fold = [&sketch_digest, &overflowed](
                    const serve::QuantileSketch& sketch) {
      sketch_digest = MixDigest(sketch_digest, sketch.StateDigest());
      overflowed = overflowed || sketch.overflowed();
    };
    fold(metrics.ttft_sketch());
    fold(metrics.ttft_per_token_sketch());
    fold(metrics.tbt_sketch());
    fold(metrics.tpot_sketch());
    fold(metrics.e2e_sketch());
    for (int rank = 0; rank < workload::kNumSloClasses; ++rank) {
      const serve::ClassMetrics& slice =
          metrics.ClassSlice(static_cast<workload::SloClass>(rank));
      fold(slice.queue_delay);
      fold(slice.ttft);
    }
    outcome.metrics_state_digest = sketch_digest;
    outcome.metrics_overflowed = overflowed;
  }
  outcome.meets_slo = outcome.stable && metrics.MeetsSlo(deployment.slo);

  const sim::Time end = std::max<sim::Time>(frontend.last_completion(), 1);
  outcome.token_throughput = metrics.TokenThroughput(0, end);
  outcome.request_throughput = metrics.RequestThroughput(0, end);

  if (fleet != nullptr) {
    outcome.fleet_active = true;
    outcome.fleet = fleet->Stats();
    double hit_rate = 0.0;
    for (std::size_t r = 0; r < fleet->num_replicas(); ++r) {
      core::MuxWiseEngine& replica = fleet->replica(r);
      outcome.gpu_utilization.push_back(
          UtilPercent(replica.mux().device(), end));
      outcome.preemptions += replica.preemptions();
      outcome.kv_spills += replica.kv_spills();
      outcome.kv_recomputes += replica.kv_recomputes();
      outcome.kv_restores += replica.kv_restores();
      hit_rate += replica.pool().HitRate();
    }
    outcome.cache_hit_rate =
        hit_rate / static_cast<double>(fleet->num_replicas());
    outcome.overload_active =
        fleet->replica(0).overload_controller().enabled();
  } else if (muxwise != nullptr) {
    outcome.gpu_utilization = {UtilPercent(muxwise->mux().device(), end)};
    outcome.bubble_ratio = muxwise->mux().AverageBubbleRatio();
    outcome.cache_hit_rate = muxwise->pool().HitRate();
    outcome.preemptions = muxwise->preemptions();
    outcome.partition_trace = muxwise->partition_trace();
    outcome.overload_active = muxwise->overload_controller().enabled();
    outcome.overload_mode_transitions =
        muxwise->overload_controller().mode_transitions();
    outcome.kv_spills = muxwise->kv_spills();
    outcome.kv_recomputes = muxwise->kv_recomputes();
    outcome.kv_restores = muxwise->kv_restores();
  } else if (chunked != nullptr) {
    outcome.gpu_utilization = {UtilPercent(chunked->device(), end)};
    outcome.bubble_ratio =
        chunked->device().stream_stats(0).BubbleRatio();
    outcome.cache_hit_rate = chunked->pool().HitRate();
  } else if (disagg != nullptr) {
    outcome.gpu_utilization = {UtilPercent(disagg->prefill_device(), end),
                               UtilPercent(disagg->decode_device(), end)};
    outcome.cache_hit_rate = disagg->prefill_pool().HitRate();
  } else if (loong != nullptr) {
    outcome.gpu_utilization = {UtilPercent(loong->device(), end)};
  }
  // On the parallel host, EventDigest/ExecutedEvents come from the
  // kernel; its single-shard fast path reports shard 0's values, so the
  // digest is comparable across threads settings by construction.
  outcome.event_digest =
      parallel ? parallel->EventDigest() : simulator.EventDigest();
  outcome.executed_events =
      parallel ? parallel->ExecutedEvents() : simulator.ExecutedEvents();
  if (outcome.diagnostic.empty()) {
    RunScenarioAudits(simulator, parallel ? &*parallel : nullptr, *engine,
                      metrics, injector ? &*injector : nullptr);
  }
  return outcome;
}

std::uint64_t OutcomeDigest(const RunOutcome& outcome) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;  // pi, for a fixed seed.
  h = MixDigest(h, outcome.event_digest);
  h = MixDigest(h, static_cast<std::uint64_t>(outcome.executed_events));
  h = MixDigest(h, static_cast<std::uint64_t>(outcome.completed));
  h = MixDigest(h, static_cast<std::uint64_t>(outcome.total));
  h = MixDigest(h, static_cast<std::uint64_t>(outcome.stable ? 1 : 0));
  h = MixSummary(h, outcome.ttft);
  h = MixSummary(h, outcome.tbt);
  h = MixSummary(h, outcome.tpot);
  h = MixSummary(h, outcome.e2e);
  h = MixDigest(h, outcome.tbt_attainment);
  h = MixDigest(h, outcome.token_throughput);
  h = MixDigest(h, outcome.request_throughput);
  for (double util : outcome.gpu_utilization) h = MixDigest(h, util);
  h = MixDigest(h, outcome.bubble_ratio);
  h = MixDigest(h, outcome.cache_hit_rate);
  h = MixDigest(h, static_cast<std::uint64_t>(outcome.preemptions));
  for (const auto& sample : outcome.partition_trace) {
    h = MixDigest(h, static_cast<std::uint64_t>(sample.time));
    h = MixDigest(h, static_cast<std::uint64_t>(sample.decode_sms));
  }
  // Sketch-era field: below the exact-tier capacity the summaries above
  // already pin every population bit-for-bit, so folding the sketch
  // state would only perturb historical digests; past the capacity the
  // summaries quantise and the canonical sketch state is the witness.
  if (outcome.metrics_overflowed) {
    h = MixDigest(h, outcome.metrics_state_digest);
  }
  // Fault-era fields fold in only when active, so fault-free digests stay
  // comparable with pre-fault baselines.
  if (outcome.split.timed_out + outcome.split.shed + outcome.split.failed >
      0) {
    h = MixDigest(h, static_cast<std::uint64_t>(outcome.split.attained));
    h = MixDigest(h, static_cast<std::uint64_t>(outcome.split.timed_out));
    h = MixDigest(h, static_cast<std::uint64_t>(outcome.split.shed));
    h = MixDigest(h, static_cast<std::uint64_t>(outcome.split.failed));
  }
  // Overload-era fields follow the same convention: folded only when
  // the controller was active or the trace carried a class mix, so
  // plain runs keep their historical digests.
  if (outcome.overload_active || outcome.has_class_mix) {
    for (const serve::ClassMetrics& slice : outcome.per_class) {
      h = MixDigest(h, static_cast<std::uint64_t>(slice.split.attained));
      h = MixDigest(h, static_cast<std::uint64_t>(slice.split.timed_out));
      h = MixDigest(h, static_cast<std::uint64_t>(slice.split.shed));
      h = MixDigest(h, static_cast<std::uint64_t>(slice.split.failed));
      h = MixDigest(h, slice.QueueDelayP99());
    }
    h = MixDigest(h,
                  static_cast<std::uint64_t>(outcome.overload_mode_transitions));
    h = MixDigest(h, static_cast<std::uint64_t>(outcome.kv_spills));
    h = MixDigest(h, static_cast<std::uint64_t>(outcome.kv_recomputes));
    h = MixDigest(h, static_cast<std::uint64_t>(outcome.kv_restores));
  }
  // Fleet-era fields: folded only when the router was enabled, so every
  // single-replica run keeps its historical digest bit-for-bit.
  if (outcome.fleet_active) {
    const route::FleetStats& fleet = outcome.fleet;
    h = MixDigest(h, static_cast<std::uint64_t>(fleet.replicas));
    for (std::size_t routed : fleet.routed_per_replica) {
      h = MixDigest(h, static_cast<std::uint64_t>(routed));
    }
    h = MixDigest(h, static_cast<std::uint64_t>(fleet.affinity_hits));
    h = MixDigest(h, static_cast<std::uint64_t>(fleet.session_hits));
    h = MixDigest(h, static_cast<std::uint64_t>(fleet.rehomed));
    h = MixDigest(h, static_cast<std::uint64_t>(fleet.rehome_migrations));
    h = MixDigest(h, static_cast<std::uint64_t>(fleet.rehome_recomputes));
    h = MixDigest(h, static_cast<std::uint64_t>(fleet.rehome_shed));
    h = MixDigest(h, static_cast<std::uint64_t>(fleet.rehome_failed));
    h = MixDigest(h, static_cast<std::uint64_t>(fleet.fleet_shed));
    h = MixDigest(h, static_cast<std::uint64_t>(fleet.failovers));
    h = MixDigest(h, static_cast<std::uint64_t>(fleet.health_transitions));
    h = MixDigest(h, static_cast<std::uint64_t>(fleet.mode_transitions));
    h = MixDigest(h, static_cast<std::uint64_t>(fleet.scale_ups));
    h = MixDigest(h, static_cast<std::uint64_t>(fleet.scale_downs));
    h = MixSummary(h, fleet.failover_latency);
  }
  for (unsigned char c : outcome.diagnostic) {
    h = MixDigest(h, static_cast<std::uint64_t>(c));
  }
  return h;
}

DeterminismReport VerifyDeterminism(
    EngineKind kind, const serve::Deployment& deployment,
    const workload::Trace& trace,
    const core::ContentionEstimator* shared_estimator,
    const RunConfig& config) {
  const RunOutcome first =
      RunWorkload(kind, deployment, trace, shared_estimator, config);
  const RunOutcome second =
      RunWorkload(kind, deployment, trace, shared_estimator, config);

  DeterminismReport report;
  report.first_digest = OutcomeDigest(first);
  report.second_digest = OutcomeDigest(second);
  report.first_events = first.executed_events;
  report.second_events = second.executed_events;
  if (first.event_digest != second.event_digest) {
    report.mismatch = "event-stream digests diverged";
  } else if (first.executed_events != second.executed_events) {
    report.mismatch = "executed-event counts diverged";
  } else if (report.first_digest != report.second_digest) {
    report.mismatch = "event streams agree but reported outcomes diverged";
  }
  report.deterministic = report.mismatch.empty();
  return report;
}

GoodputResult SweepGoodput(EngineKind kind,
                           const serve::Deployment& deployment,
                           const workload::Trace& base_trace,
                           const std::vector<double>& rates,
                           const core::ContentionEstimator* shared_estimator,
                           const RunConfig& config,
                           std::uint64_t arrival_seed) {
  GoodputResult result;
  // Hold the tested duration roughly constant across rates: resample
  // arrivals, then truncate to ~90 s of offered load. A prefix never
  // orphans a session turn (turns keep their relative order).
  constexpr double kSweepSpanSeconds = 90.0;
  for (double rate : rates) {
    workload::Trace trace = base_trace;
    workload::ResampleArrivalsPoisson(trace, rate, arrival_seed);
    const std::size_t wanted = std::max<std::size_t>(
        50, static_cast<std::size_t>(rate * kSweepSpanSeconds));
    if (trace.requests.size() > wanted) {
      trace.requests.resize(wanted);
    }
    SweepPoint point;
    point.rate_rps = rate;
    RunConfig sweep_config = config;
    sweep_config.steady_state = true;
    point.outcome =
        RunWorkload(kind, deployment, trace, shared_estimator, sweep_config);
    const bool ok = point.outcome.meets_slo;
    result.points.push_back(point);
    if (ok && rate > result.goodput_rps) {
      result.goodput_rps = rate;
      result.at_goodput = point.outcome;
    }
    if (!ok) break;  // Paper: stop once unstable / SLO-violating.
  }
  return result;
}

}  // namespace muxwise::harness
