#include "obs/trace_export.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace muxwise::obs {

namespace {

constexpr char kMagic[4] = {'M', 'U', 'X', 'T'};
constexpr std::uint32_t kVersion = 1;

void AppendU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void AppendU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void AppendString(std::vector<std::uint8_t>& out, const std::string& s) {
  AppendU32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/** Bounds-checked little-endian reader over the encoded byte stream. */
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  bool ReadU32(std::uint32_t& v) {
    if (pos_ + 4 > bytes_.size()) return false;
    v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      v |= static_cast<std::uint32_t>(bytes_[pos_++]) << shift;
    }
    return true;
  }

  bool ReadU64(std::uint64_t& v) {
    if (pos_ + 8 > bytes_.size()) return false;
    v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      v |= static_cast<std::uint64_t>(bytes_[pos_++]) << shift;
    }
    return true;
  }

  bool ReadU8(std::uint8_t& v) {
    if (pos_ >= bytes_.size()) return false;
    v = bytes_[pos_++];
    return true;
  }

  bool ReadString(std::string& s) {
    std::uint32_t len = 0;
    if (!ReadU32(len)) return false;
    if (pos_ + len > bytes_.size()) return false;
    s.assign(reinterpret_cast<const char*>(bytes_.data()) + pos_, len);
    pos_ += len;
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

/** Nanosecond timestamp rendered as microseconds with 3 decimals. */
std::string MicrosString(sim::Time ns) {
  char buf[48];
  const long long whole = static_cast<long long>(ns / 1000);
  const long long frac = static_cast<long long>(ns % 1000);
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", whole, frac);
  return buf;
}

/** Deterministic JSON number: exact integers plainly, else %.17g. */
std::string ValueString(double v) {
  char buf[48];
  const double r = std::nearbyint(v);
  if (r == v && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(r));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string RenderChromeJson(const std::vector<std::string>& tracks,
                             const std::vector<std::string>& names,
                             const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  for (std::size_t t = 0; t < tracks.size(); ++t) {
    sep();
    out << R"({"ph":"M","pid":0,"tid":)" << t
        << R"(,"name":"thread_name","args":{"name":")"
        << JsonEscape(tracks[t]) << "\"}}";
  }
  for (const TraceEvent& e : events) {
    const std::string& name =
        e.name < names.size() ? names[e.name] : std::string();
    sep();
    switch (e.kind) {
      case EventKind::kSpanBegin:
      case EventKind::kSpanEnd:
        out << R"({"ph":")" << (e.kind == EventKind::kSpanBegin ? 'B' : 'E')
            << R"(","pid":0,"tid":)" << e.track << R"(,"ts":)"
            << MicrosString(e.time) << R"(,"name":")" << JsonEscape(name)
            << R"(","args":{"id":)" << e.id << R"(,"value":)"
            << ValueString(e.value) << "}}";
        break;
      case EventKind::kInstant:
        out << R"({"ph":"i","s":"t","pid":0,"tid":)" << e.track
            << R"(,"ts":)" << MicrosString(e.time) << R"(,"name":")"
            << JsonEscape(name) << R"(","args":{"id":)" << e.id
            << R"(,"value":)" << ValueString(e.value) << "}}";
        break;
      case EventKind::kCounter:
        out << R"({"ph":"C","pid":0,"tid":)" << e.track << R"(,"ts":)"
            << MicrosString(e.time) << R"(,"name":")" << JsonEscape(name)
            << R"(","args":{"value":)" << ValueString(e.value) << "}}";
        break;
      case EventKind::kComplete:
        out << R"({"ph":"X","pid":0,"tid":)" << e.track << R"(,"ts":)"
            << MicrosString(e.time) << R"(,"dur":)"
            << MicrosString(static_cast<sim::Time>(e.value))
            << R"(,"name":")" << JsonEscape(name) << R"(","args":{"id":)"
            << e.id << "}}";
        break;
    }
  }
  out << "\n]}\n";
  return out.str();
}

}  // namespace

std::vector<std::uint8_t> EncodeBinary(const TraceRecorder& recorder) {
  std::vector<std::uint8_t> out;
  const std::vector<TraceEvent> events = recorder.Events();
  out.reserve(64 + events.size() * 29);
  out.insert(out.end(), kMagic, kMagic + 4);
  AppendU32(out, kVersion);
  AppendU32(out, static_cast<std::uint32_t>(recorder.tracks().size()));
  for (const std::string& track : recorder.tracks()) AppendString(out, track);
  AppendU32(out, static_cast<std::uint32_t>(recorder.names().size()));
  for (const std::string& name : recorder.names()) AppendString(out, name);
  AppendU64(out, recorder.dropped());
  AppendU64(out, static_cast<std::uint64_t>(events.size()));
  for (const TraceEvent& e : events) {
    out.push_back(static_cast<std::uint8_t>(e.kind));
    AppendU32(out, e.track);
    AppendU32(out, e.name);
    AppendU64(out, static_cast<std::uint64_t>(e.time));
    AppendU64(out, static_cast<std::uint64_t>(e.id));
    AppendU64(out, std::bit_cast<std::uint64_t>(e.value));
  }
  return out;
}

bool DecodeBinary(const std::vector<std::uint8_t>& bytes, DecodedTrace& out) {
  if (bytes.size() < 8 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return false;
  }
  Reader reader(bytes);
  std::uint8_t skip = 0;
  for (int i = 0; i < 4; ++i) reader.ReadU8(skip);
  std::uint32_t version = 0;
  if (!reader.ReadU32(version) || version != kVersion) return false;

  out = DecodedTrace{};
  std::uint32_t count = 0;
  if (!reader.ReadU32(count)) return false;
  out.tracks.resize(count);
  for (std::string& track : out.tracks) {
    if (!reader.ReadString(track)) return false;
  }
  if (!reader.ReadU32(count)) return false;
  out.names.resize(count);
  for (std::string& name : out.names) {
    if (!reader.ReadString(name)) return false;
  }
  if (!reader.ReadU64(out.dropped)) return false;
  std::uint64_t num_events = 0;
  if (!reader.ReadU64(num_events)) return false;
  out.events.resize(num_events);
  for (TraceEvent& e : out.events) {
    std::uint8_t kind = 0;
    std::uint64_t time_bits = 0;
    std::uint64_t id_bits = 0;
    std::uint64_t value_bits = 0;
    if (!reader.ReadU8(kind) || kind > 4) return false;
    e.kind = static_cast<EventKind>(kind);
    if (!reader.ReadU32(e.track) || e.track >= out.tracks.size()) return false;
    if (!reader.ReadU32(e.name) || e.name >= out.names.size()) return false;
    if (!reader.ReadU64(time_bits)) return false;
    e.time = static_cast<sim::Time>(time_bits);
    if (!reader.ReadU64(id_bits)) return false;
    e.id = static_cast<std::int64_t>(id_bits);
    if (!reader.ReadU64(value_bits)) return false;
    e.value = std::bit_cast<double>(value_bits);
  }
  return reader.AtEnd();
}

std::uint64_t TraceDigest(const TraceRecorder& recorder) {
  std::uint64_t hash = 14695981039346656037ull;
  for (std::uint8_t byte : EncodeBinary(recorder)) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string ExportChromeJson(const TraceRecorder& recorder) {
  return RenderChromeJson(recorder.tracks(), recorder.names(),
                          recorder.Events());
}

std::string ExportChromeJson(const DecodedTrace& trace) {
  return RenderChromeJson(trace.tracks, trace.names, trace.events);
}

bool WriteBinaryFile(const std::string& path, const TraceRecorder& recorder) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::vector<std::uint8_t> bytes = EncodeBinary(recorder);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

bool ReadBinaryFile(const std::string& path, DecodedTrace& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return DecodeBinary(bytes, out);
}

}  // namespace muxwise::obs
