#ifndef MUXWISE_OBS_TRACE_EXPORT_H_
#define MUXWISE_OBS_TRACE_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace muxwise::obs {

/**
 * Fully decoded binary trace: intern tables plus the event stream.
 * Round-trips losslessly through EncodeBinary/DecodeBinary.
 */
struct DecodedTrace {
  std::vector<std::string> tracks;
  std::vector<std::string> names;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;

  friend bool operator==(const DecodedTrace&, const DecodedTrace&) = default;
};

/**
 * Serializes the recorder to the compact MUXT binary format (explicit
 * little-endian layout, no padding) — the byte stream is identical
 * across platforms for identical traces, so digests of it are the
 * trace-determinism currency.
 */
std::vector<std::uint8_t> EncodeBinary(const TraceRecorder& recorder);

/**
 * Parses a MUXT byte stream. Returns false on any structural error
 * (bad magic, truncation, unknown kind, out-of-range intern index)
 * leaving `out` unspecified.
 */
bool DecodeBinary(const std::vector<std::uint8_t>& bytes, DecodedTrace& out);

/** FNV-1a 64-bit digest of EncodeBinary(recorder). */
std::uint64_t TraceDigest(const TraceRecorder& recorder);

/**
 * Renders the recorder as Chrome/Perfetto trace_event JSON: one
 * metadata thread_name record per track, then the event stream in
 * record order. Timestamps are microseconds with nanosecond decimals;
 * output is byte-deterministic for identical traces.
 */
std::string ExportChromeJson(const TraceRecorder& recorder);

/** Same rendering, for an already-decoded binary trace. */
std::string ExportChromeJson(const DecodedTrace& trace);

/** Writes EncodeBinary(recorder) to `path`. False on I/O failure. */
bool WriteBinaryFile(const std::string& path, const TraceRecorder& recorder);

/** Reads a MUXT file written by WriteBinaryFile. False on failure. */
bool ReadBinaryFile(const std::string& path, DecodedTrace& out);

}  // namespace muxwise::obs

#endif  // MUXWISE_OBS_TRACE_EXPORT_H_
