#include "obs/trace_query.h"

#include <algorithm>
#include <map>
#include <tuple>

namespace muxwise::obs {

namespace {

/** Intern index of `s` in `table`, or kNoIndex when absent. */
constexpr std::uint32_t kNoIndex = 0xffffffffu;

std::uint32_t IndexOf(const std::vector<std::string>& table,
                      std::string_view s) {
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table[i] == s) return static_cast<std::uint32_t>(i);
  }
  return kNoIndex;
}

bool MatchesFilter(std::uint32_t idx, std::string_view filter,
                   std::uint32_t filter_idx) {
  return filter.empty() || idx == filter_idx;
}

void SortSpans(std::vector<Span>& spans) {
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    return std::tie(a.begin, a.end, a.id, a.track, a.name) <
           std::tie(b.begin, b.end, b.id, b.track, b.name);
  });
}

}  // namespace

std::vector<Span> ExtractSpans(const TraceRecorder& recorder,
                               std::string_view track,
                               std::string_view name) {
  const std::vector<std::string>& tracks = recorder.tracks();
  const std::vector<std::string>& names = recorder.names();
  const std::uint32_t track_idx = IndexOf(tracks, track);
  const std::uint32_t name_idx = IndexOf(names, name);
  if (!track.empty() && track_idx == kNoIndex) return {};
  if (!name.empty() && name_idx == kNoIndex) return {};

  std::vector<Span> spans;
  // Open begins keyed by (track, name, id); later begins with the same
  // key shadow earlier ones (LIFO), matching nested emission.
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::int64_t>,
           std::vector<TraceEvent>>
      open;
  for (const TraceEvent& e : recorder.Events()) {
    if (!MatchesFilter(e.track, track, track_idx)) continue;
    if (!MatchesFilter(e.name, name, name_idx)) continue;
    switch (e.kind) {
      case EventKind::kSpanBegin:
        open[{e.track, e.name, e.id}].push_back(e);
        break;
      case EventKind::kSpanEnd: {
        auto it = open.find({e.track, e.name, e.id});
        if (it == open.end() || it->second.empty()) break;
        const TraceEvent begin = it->second.back();
        it->second.pop_back();
        spans.push_back(Span{tracks[e.track], names[e.name], e.id,
                             begin.time, e.time, begin.value});
        break;
      }
      case EventKind::kComplete:
        spans.push_back(Span{tracks[e.track], names[e.name], e.id, e.time,
                             e.time + static_cast<sim::Time>(e.value), 0.0});
        break;
      case EventKind::kInstant:
      case EventKind::kCounter:
        break;
    }
  }
  SortSpans(spans);
  return spans;
}

bool Overlaps(const Span& a, const Span& b) {
  return a.begin < b.end && b.begin < a.end;
}

std::vector<Gap> ExtractGaps(const std::vector<Span>& spans) {
  if (spans.size() < 2) return {};
  std::vector<Span> sorted = spans;
  SortSpans(sorted);
  std::vector<Gap> gaps;
  sim::Time covered_until = sorted.front().end;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const Span& s = sorted[i];
    if (s.begin > covered_until) {
      gaps.push_back(Gap{covered_until, s.begin});
    }
    covered_until = std::max(covered_until, s.end);
  }
  return gaps;
}

sim::Duration MaxGap(const std::vector<Span>& spans) {
  sim::Duration max_gap = 0;
  for (const Gap& gap : ExtractGaps(spans)) {
    max_gap = std::max(max_gap, gap.duration());
  }
  return max_gap;
}

double CounterValueAt(const TraceRecorder& recorder, std::string_view track,
                      std::string_view name, sim::Time t, double if_none) {
  const std::uint32_t track_idx = IndexOf(recorder.tracks(), track);
  const std::uint32_t name_idx = IndexOf(recorder.names(), name);
  if (track_idx == kNoIndex || name_idx == kNoIndex) return if_none;
  double value = if_none;
  for (const TraceEvent& e : recorder.Events()) {
    if (e.kind != EventKind::kCounter || e.track != track_idx ||
        e.name != name_idx) {
      continue;
    }
    if (e.time > t) break;  // Record order is time order per run.
    value = e.value;
  }
  return value;
}

double CounterIntegral(const TraceRecorder& recorder, std::string_view track,
                       std::string_view name, sim::Time t0, sim::Time t1) {
  const std::uint32_t track_idx = IndexOf(recorder.tracks(), track);
  const std::uint32_t name_idx = IndexOf(recorder.names(), name);
  if (track_idx == kNoIndex || name_idx == kNoIndex || t1 <= t0) return 0.0;
  double level = 0.0;
  sim::Time cursor = t0;
  double integral = 0.0;
  for (const TraceEvent& e : recorder.Events()) {
    if (e.kind != EventKind::kCounter || e.track != track_idx ||
        e.name != name_idx) {
      continue;
    }
    if (e.time <= t0) {
      level = e.value;
      continue;
    }
    if (e.time >= t1) break;
    integral += level * sim::ToSeconds(e.time - cursor);
    level = e.value;
    cursor = e.time;
  }
  integral += level * sim::ToSeconds(t1 - cursor);
  return integral;
}

double CounterMax(const TraceRecorder& recorder, std::string_view track,
                  std::string_view name, double if_none) {
  const std::uint32_t track_idx = IndexOf(recorder.tracks(), track);
  const std::uint32_t name_idx = IndexOf(recorder.names(), name);
  if (track_idx == kNoIndex || name_idx == kNoIndex) return if_none;
  bool seen = false;
  double max_value = 0.0;
  for (const TraceEvent& e : recorder.Events()) {
    if (e.kind != EventKind::kCounter || e.track != track_idx ||
        e.name != name_idx) {
      continue;
    }
    max_value = seen ? std::max(max_value, e.value) : e.value;
    seen = true;
  }
  return seen ? max_value : if_none;
}

std::vector<TraceEvent> ExtractInstants(const TraceRecorder& recorder,
                                        std::string_view track,
                                        std::string_view name) {
  const std::uint32_t track_idx = IndexOf(recorder.tracks(), track);
  const std::uint32_t name_idx = IndexOf(recorder.names(), name);
  if (!track.empty() && track_idx == kNoIndex) return {};
  if (!name.empty() && name_idx == kNoIndex) return {};
  std::vector<TraceEvent> instants;
  for (const TraceEvent& e : recorder.Events()) {
    if (e.kind != EventKind::kInstant) continue;
    if (!MatchesFilter(e.track, track, track_idx)) continue;
    if (!MatchesFilter(e.name, name, name_idx)) continue;
    instants.push_back(e);
  }
  return instants;
}

std::vector<Span> RequestSpans(const TraceRecorder& recorder,
                               std::int64_t id) {
  std::vector<Span> spans;
  for (Span& span : ExtractSpans(recorder, "request")) {
    if (span.id == id) spans.push_back(std::move(span));
  }
  return spans;
}

CriticalPath RequestCriticalPath(const TraceRecorder& recorder,
                                 std::int64_t id) {
  CriticalPath path;
  for (const Span& span : RequestSpans(recorder, id)) {
    if (span.name == "queued") path.queued += span.duration();
    if (span.name == "prefill") path.prefill += span.duration();
    if (span.name == "decode") path.decode += span.duration();
  }
  return path;
}

}  // namespace muxwise::obs
