#include "obs/trace.h"

#include <utility>

namespace muxwise::obs {

namespace {

std::uint32_t Intern(std::string_view s, std::vector<std::string>& table,
                     std::map<std::string, std::uint32_t, std::less<>>& index) {
  auto it = index.find(s);
  if (it != index.end()) return it->second;
  const auto idx = static_cast<std::uint32_t>(table.size());
  table.emplace_back(s);
  index.emplace(std::string(s), idx);
  return idx;
}

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool IsSpanKind(EventKind kind) {
  return kind == EventKind::kSpanBegin || kind == EventKind::kSpanEnd ||
         kind == EventKind::kComplete;
}

/** Deterministic 1-in-N keep decision over the span's identity only —
 * never its timestamps — so both ends of a span agree. */
bool KeepSpan(const TraceEvent& event, std::uint64_t period) {
  std::uint64_t key = SplitMix64(static_cast<std::uint64_t>(event.track));
  key = SplitMix64(key ^ static_cast<std::uint64_t>(event.name));
  key = SplitMix64(key ^ static_cast<std::uint64_t>(event.id));
  return key % period == 0;
}

}  // namespace

std::uint32_t TraceRecorder::InternTrack(std::string_view track) {
  return Intern(track, tracks_, track_index_);
}

std::uint32_t TraceRecorder::InternName(std::string_view name) {
  return Intern(name, names_, name_index_);
}

void TraceRecorder::Record(const TraceEvent& event) {
  if (options_.span_sample_period > 1 && IsSpanKind(event.kind) &&
      !KeepSpan(event, options_.span_sample_period)) {
    ++sampled_out_;
    return;
  }
  if (options_.ring_capacity == 0) {
    events_.push_back(event);
    return;
  }
  if (events_.size() < options_.ring_capacity) {
    events_.push_back(event);
    return;
  }
  events_[ring_head_] = event;
  ring_head_ = (ring_head_ + 1) % options_.ring_capacity;
  ++dropped_;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(ring_head_ + i) % events_.size()]);
  }
  return out;
}

void TraceRecorder::Clear() {
  events_.clear();
  ring_head_ = 0;
  dropped_ = 0;
  sampled_out_ = 0;
  tracks_.clear();
  names_.clear();
  track_index_.clear();
  name_index_.clear();
}

void Tracer::Emit(EventKind kind, std::string_view track,
                  std::string_view name, sim::Time time, std::int64_t id,
                  double value) const {
  EmitInterned(kind,
               SpanLabel{recorder_->InternTrack(track),
                         recorder_->InternName(name)},
               time, id, value);
}

void Tracer::EmitInterned(EventKind kind, SpanLabel label, sim::Time time,
                          std::int64_t id, double value) const {
  TraceEvent event;
  event.kind = kind;
  event.track = label.track;
  event.name = label.name;
  event.time = time;
  event.id = id;
  event.value = value;
  recorder_->Record(event);
}

}  // namespace muxwise::obs
