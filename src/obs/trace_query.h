#ifndef MUXWISE_OBS_TRACE_QUERY_H_
#define MUXWISE_OBS_TRACE_QUERY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "sim/time.h"

namespace muxwise::obs {

/**
 * A closed span reconstructed from the event stream: either a
 * kSpanBegin/kSpanEnd pair matched by (track, name, id) or a kComplete
 * event. `value` is the begin-side payload (batch size, granted SMs,
 * ...). Query results are sorted by (begin, end, id) so assertions see
 * a stable order regardless of callback interleaving.
 */
struct Span {
  std::string track;
  std::string name;
  std::int64_t id = 0;
  sim::Time begin = 0;
  sim::Time end = 0;
  double value = 0.0;

  sim::Duration duration() const { return end - begin; }

  friend bool operator==(const Span&, const Span&) = default;
};

/** A gap between consecutive spans on one timeline. */
struct Gap {
  sim::Time begin = 0;
  sim::Time end = 0;

  sim::Duration duration() const { return end - begin; }
};

/**
 * Extracts closed spans on `track` (all tracks when empty), optionally
 * filtered by span `name`. Unmatched begins (e.g. spans cut off by a
 * crash epoch or the end of the run) are dropped.
 */
std::vector<Span> ExtractSpans(const TraceRecorder& recorder,
                               std::string_view track = {},
                               std::string_view name = {});

/** True when [a.begin, a.end) and [b.begin, b.end) intersect. */
bool Overlaps(const Span& a, const Span& b);

/**
 * Idle gaps between consecutive spans, treating the spans as one
 * timeline (overlapping spans merge; only genuinely uncovered intervals
 * between the first begin and the last end are reported).
 */
std::vector<Gap> ExtractGaps(const std::vector<Span>& spans);

/** Longest gap duration in `spans` (0 when fewer than two spans). */
sim::Duration MaxGap(const std::vector<Span>& spans);

/**
 * Value of counter (track, name) at time `t`: the last sample with
 * time <= t in record order, or `if_none` when none precedes `t`.
 */
double CounterValueAt(const TraceRecorder& recorder, std::string_view track,
                      std::string_view name, sim::Time t,
                      double if_none = 0.0);

/**
 * Step integral of counter (track, name) over [t0, t1] in value *
 * seconds; samples before t0 seed the initial level (0 when none).
 */
double CounterIntegral(const TraceRecorder& recorder, std::string_view track,
                       std::string_view name, sim::Time t0, sim::Time t1);

/** Maximum sample of counter (track, name); `if_none` when unsampled. */
double CounterMax(const TraceRecorder& recorder, std::string_view track,
                  std::string_view name, double if_none = 0.0);

/** All instants named `name` on `track` (all tracks when empty). */
std::vector<TraceEvent> ExtractInstants(const TraceRecorder& recorder,
                                        std::string_view track = {},
                                        std::string_view name = {});

/** Lifecycle spans recorded for request `id` on the "request" track. */
std::vector<Span> RequestSpans(const TraceRecorder& recorder,
                               std::int64_t id);

/**
 * Per-request critical path decomposed from the lifecycle spans:
 * queued (arrival -> prefill start), prefill (prefill start -> first
 * token), decode (first token -> completion). Phases missing from the
 * trace (e.g. shed before prefill) stay 0.
 */
struct CriticalPath {
  sim::Duration queued = 0;
  sim::Duration prefill = 0;
  sim::Duration decode = 0;

  sim::Duration total() const { return queued + prefill + decode; }
};

CriticalPath RequestCriticalPath(const TraceRecorder& recorder,
                                 std::int64_t id);

}  // namespace muxwise::obs

#endif  // MUXWISE_OBS_TRACE_QUERY_H_
