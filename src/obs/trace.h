#ifndef MUXWISE_OBS_TRACE_H_
#define MUXWISE_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace muxwise::obs {

/**
 * Typed trace event kinds, modelled after the Chrome trace_event phases
 * they export to: paired duration spans (B/E), instants (i), counter
 * samples (C), and retroactive complete spans (X).
 */
enum class EventKind : std::uint8_t {
  kSpanBegin = 0,
  kSpanEnd = 1,
  kInstant = 2,
  kCounter = 3,
  kComplete = 4,
};

/**
 * One recorded event. Track and name are intern-table indices into the
 * owning TraceRecorder, so the event itself is a fixed-size POD and the
 * full stream digests deterministically. `value` carries the counter
 * sample, a span payload (e.g. batch size, granted SMs), or — for
 * kComplete — the span duration in integer nanoseconds (exact in a
 * double for any simulated duration below 2^53 ns, ~104 days).
 */
struct TraceEvent {
  EventKind kind = EventKind::kInstant;
  std::uint32_t track = 0;
  std::uint32_t name = 0;
  sim::Time time = 0;
  std::int64_t id = 0;
  double value = 0.0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/**
 * Deterministic in-memory event sink.
 *
 * Strings are interned in first-seen order, so identical instrumented
 * runs produce identical tables and identical event streams byte for
 * byte. With `ring_capacity` 0 the recorder grows unboundedly; a
 * positive capacity bounds memory by overwriting the oldest events
 * (dropped() counts the overwritten ones) — Events() always returns the
 * survivors oldest-first.
 *
 * The recorder never schedules simulator events and is only ever
 * written through Tracer, whose emit paths are no-ops when no recorder
 * is attached; attaching one therefore cannot perturb the simulated
 * event order.
 */
class TraceRecorder {
 public:
  struct Options {
    /** 0 = unbounded; otherwise max events retained (oldest dropped). */
    std::size_t ring_capacity = 0;

    /**
     * 1 = record every span. N > 1 keeps a deterministic 1-in-N subset
     * of span events (kSpanBegin / kSpanEnd / kComplete), selected by a
     * splitmix64 hash of (track, name, id) — a pure function of the
     * span's identity, so a Begin and its End (and re-emissions of the
     * same logical span) survive or drop together with no per-span
     * state, and the sampled stream is bit-reproducible across runs.
     * Instants and counters are always recorded. Layered under the
     * ring: sampled-out spans never enter it (see sampled_out()).
     */
    std::uint64_t span_sample_period = 1;
  };

  TraceRecorder() = default;
  explicit TraceRecorder(Options options) : options_(options) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /** Index of `track` in the track table, interning on first use. */
  std::uint32_t InternTrack(std::string_view track);

  /** Index of `name` in the name table, interning on first use. */
  std::uint32_t InternName(std::string_view name);

  /** Appends one event (overwriting the oldest when the ring is full). */
  void Record(const TraceEvent& event);

  /** Retained events, oldest first (unwinds the ring). */
  std::vector<TraceEvent> Events() const;

  /** Track strings in intern order (index == TraceEvent::track). */
  const std::vector<std::string>& tracks() const { return tracks_; }

  /** Name strings in intern order (index == TraceEvent::name). */
  const std::vector<std::string>& names() const { return names_; }

  /** Events currently retained. */
  std::size_t size() const { return events_.size(); }

  /** Events overwritten by the bounded ring. */
  std::uint64_t dropped() const { return dropped_; }

  /** Span events skipped by 1-in-N sampling (never entered the ring). */
  std::uint64_t sampled_out() const { return sampled_out_; }

  const Options& options() const { return options_; }

  /** Discards all events and intern tables. */
  void Clear();

 private:
  Options options_;
  std::vector<TraceEvent> events_;
  std::size_t ring_head_ = 0;  // Next overwrite slot once full.
  std::uint64_t dropped_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::vector<std::string> tracks_;
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> track_index_;
  std::map<std::string, std::uint32_t, std::less<>> name_index_;
};

/**
 * A pre-interned (track, name) pair. Hot emitters resolve their labels
 * once via Tracer::Intern() and emit by index afterwards, skipping the
 * per-event string build + intern-table lookup on the critical path.
 * Only meaningful for the recorder that interned it.
 */
struct SpanLabel {
  std::uint32_t track = 0;
  std::uint32_t name = 0;
};

/**
 * Cheap, copyable emission handle threaded through the instrumented
 * layers. Default-constructed tracers are disabled: every emit method
 * returns immediately without touching the simulator, so instrumented
 * code pays one null check when tracing is off and cannot change
 * behaviour either way. Events are stamped with the simulator clock —
 * never wall-clock time — keeping traces bit-reproducible.
 */
class Tracer {
 public:
  Tracer() = default;
  Tracer(TraceRecorder* recorder, const sim::Simulator* sim)
      : recorder_(recorder), sim_(sim) {}

  bool enabled() const { return recorder_ != nullptr; }
  TraceRecorder* recorder() const { return recorder_; }

  /** Opens span `name` with stable `id` on `track` at Now(). */
  void SpanBegin(std::string_view track, std::string_view name,
                 std::int64_t id, double value = 0.0) const {
    if (recorder_ == nullptr) return;
    Emit(EventKind::kSpanBegin, track, name, sim_->Now(), id, value);
  }

  /** Closes the matching span at Now(). */
  void SpanEnd(std::string_view track, std::string_view name,
               std::int64_t id, double value = 0.0) const {
    if (recorder_ == nullptr) return;
    Emit(EventKind::kSpanEnd, track, name, sim_->Now(), id, value);
  }

  /**
   * Records a retroactive complete span [begin, begin + span). Used for
   * spans whose extent is only known after the fact (request lifecycle
   * phases rebuilt from timestamps, modelled reconfiguration windows).
   */
  void Complete(std::string_view track, std::string_view name,
                std::int64_t id, sim::Time begin, sim::Duration span) const {
    if (recorder_ == nullptr) return;
    Emit(EventKind::kComplete, track, name, begin, id,
         static_cast<double>(span));
  }

  /** Records a point event at Now(). */
  void Instant(std::string_view track, std::string_view name,
               std::int64_t id = 0, double value = 0.0) const {
    if (recorder_ == nullptr) return;
    Emit(EventKind::kInstant, track, name, sim_->Now(), id, value);
  }

  /** Samples counter `name` = `value` at Now(). */
  void Counter(std::string_view track, std::string_view name,
               double value) const {
    if (recorder_ == nullptr) return;
    Emit(EventKind::kCounter, track, name, sim_->Now(), 0, value);
  }

  // --- Pre-interned fast path -----------------------------------------

  /**
   * Resolves a (track, name) label once for reuse on every later emit.
   * Must only be called on an enabled tracer; the label is bound to
   * this tracer's recorder.
   */
  SpanLabel Intern(std::string_view track, std::string_view name) const {
    return SpanLabel{recorder_->InternTrack(track),
                     recorder_->InternName(name)};
  }

  void SpanBegin(SpanLabel label, std::int64_t id, double value = 0.0) const {
    if (recorder_ == nullptr) return;
    EmitInterned(EventKind::kSpanBegin, label, sim_->Now(), id, value);
  }

  void SpanEnd(SpanLabel label, std::int64_t id, double value = 0.0) const {
    if (recorder_ == nullptr) return;
    EmitInterned(EventKind::kSpanEnd, label, sim_->Now(), id, value);
  }

  void Instant(SpanLabel label, std::int64_t id = 0,
               double value = 0.0) const {
    if (recorder_ == nullptr) return;
    EmitInterned(EventKind::kInstant, label, sim_->Now(), id, value);
  }

  void Counter(SpanLabel label, double value) const {
    if (recorder_ == nullptr) return;
    EmitInterned(EventKind::kCounter, label, sim_->Now(), 0, value);
  }

 private:
  void Emit(EventKind kind, std::string_view track, std::string_view name,
            sim::Time time, std::int64_t id, double value) const;

  void EmitInterned(EventKind kind, SpanLabel label, sim::Time time,
                    std::int64_t id, double value) const;

  TraceRecorder* recorder_ = nullptr;
  const sim::Simulator* sim_ = nullptr;
};

}  // namespace muxwise::obs

#endif  // MUXWISE_OBS_TRACE_H_
