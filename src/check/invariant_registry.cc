#include "check/invariant_registry.h"

namespace muxwise::check {

std::string Violation::Format() const {
  return component + "/" + audit + ": " + message;
}

void AuditContext::Violate(const std::string& message) {
  sink_->push_back(Violation{component_, audit_, message});
}

void InvariantRegistry::Register(std::string component, std::string audit,
                                 AuditFn fn) {
  audits_.push_back(
      Entry{std::move(component), std::move(audit), std::move(fn)});
}

std::vector<Violation> InvariantRegistry::RunAll() const {
  std::vector<Violation> violations;
  for (const Entry& entry : audits_) {
    AuditContext ctx(entry.component, entry.audit, &violations);
    entry.fn(ctx);
  }
  return violations;
}

std::string FormatViolations(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) {
    if (!out.empty()) out += "\n";
    out += v.Format();
  }
  return out;
}

}  // namespace muxwise::check
