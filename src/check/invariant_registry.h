#ifndef MUXWISE_CHECK_INVARIANT_REGISTRY_H_
#define MUXWISE_CHECK_INVARIANT_REGISTRY_H_

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace muxwise::check {

/** One failed invariant, as reported by an audit callback. */
struct Violation {
  std::string component;  // e.g. "KvPool".
  std::string audit;      // e.g. "token-conservation".
  std::string message;    // Human-readable diagnostic.

  /** Renders as "component/audit: message". */
  std::string Format() const;
};

/**
 * Sink handed to audit callbacks while they run. Check() is the usual
 * entry point; a failing check records a Violation and keeps going, so
 * one broken invariant never masks the others.
 */
class AuditContext {
 public:
  /** Records `message` as a violation when `ok` is false. Returns ok. */
  bool Check(bool ok, const std::string& message) {
    if (!ok) Violate(message);
    return ok;
  }

  /** Records a violation unconditionally. */
  void Violate(const std::string& message);

 private:
  friend class InvariantRegistry;
  AuditContext(std::string component, std::string audit,
               std::vector<Violation>* sink)
      : component_(std::move(component)),
        audit_(std::move(audit)),
        sink_(sink) {}

  std::string component_;
  std::string audit_;
  std::vector<Violation>* sink_;
};

/**
 * Registry of invariant audits.
 *
 * Components expose a `RegisterAudits(InvariantRegistry&)` method that
 * registers named callbacks inspecting their internal state; the test
 * harness collects every component of a scenario into one registry and
 * runs all audits when the simulation has quiesced (no in-flight work),
 * aborting the run on any violation. Audits therefore may assume
 * quiescence: e.g. a KvPool audit checks that all working-set
 * reservations and prefix pins have been returned.
 *
 * The registry borrows the audited components; it must not outlive
 * them. Callbacks must be read-only and must not throw.
 */
class InvariantRegistry {
 public:
  using AuditFn = std::function<void(AuditContext&)>;

  /** Registers one named audit for `component`. */
  void Register(std::string component, std::string audit, AuditFn fn);

  /** Runs every audit; returns all violations (empty when healthy). */
  std::vector<Violation> RunAll() const;

  /** Number of registered audits. */
  std::size_t size() const { return audits_.size(); }

 private:
  struct Entry {
    std::string component;
    std::string audit;
    AuditFn fn;
  };
  std::vector<Entry> audits_;
};

/** Formats violations one per line (for logs and Panic messages). */
std::string FormatViolations(const std::vector<Violation>& violations);

}  // namespace muxwise::check

#endif  // MUXWISE_CHECK_INVARIANT_REGISTRY_H_
