#include "llm/predictor.h"

#include <algorithm>
#include <cmath>

#include "llm/least_squares.h"
#include "sim/logging.h"

namespace muxwise::llm {

namespace {

std::vector<double> PrefillFeatures(const std::vector<SeqWork>& batch) {
  double sum_n2 = 0.0, sum_nr = 0.0, sum_n = 0.0;
  for (const SeqWork& seq : batch) {
    const double n = static_cast<double>(seq.new_tokens);
    const double r = static_cast<double>(seq.reused_tokens);
    sum_n2 += n * n;
    sum_nr += n * r;
    sum_n += n;
  }
  return {sum_n2, sum_nr, sum_n, 1.0};
}

std::vector<double> DecodeFeatures(
    const std::vector<std::int64_t>& context_lens) {
  double sum_r = 0.0;
  for (std::int64_t r : context_lens) sum_r += static_cast<double>(r);
  return {sum_r, static_cast<double>(context_lens.size()), 1.0};
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

SoloRunPredictor SoloRunPredictor::Train(const gpu::Gpu& device,
                                         const CostModel& cost_model,
                                         const std::vector<int>& sm_options) {
  MUX_CHECK(!sm_options.empty());
  SoloRunPredictor predictor;

  const std::vector<std::int64_t> new_grid = {128,  256,  512,   1024,
                                              2048, 4096, 8192,  16384,
                                              32768, 65536};
  const std::vector<std::int64_t> reuse_grid = {0,    1024,  4096,
                                                16384, 65536, 131072};
  const std::vector<int> batch_grid = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  // Decode contexts follow the paper's profiling grid (powers of 4
  // starting at 2K); shorter contexts extrapolate, covered by the
  // estimator's guard margin.
  const std::vector<std::int64_t> decode_ctx_grid = {2048, 8192, 32768,
                                                     131072};

  for (int sms : sm_options) {
    // --- Prefill fit ---
    std::vector<std::vector<double>> px;
    std::vector<double> py, pw;
    for (std::int64_t n : new_grid) {
      for (std::int64_t r : reuse_grid) {
        if (n + r > cost_model.model().max_context) continue;
        const std::vector<SeqWork> batch = {SeqWork{n, r}};
        const gpu::Kernel kernel = cost_model.PrefillPhase(batch);
        const double y = device.SoloDurationSeconds(kernel, sms);
        px.push_back(PrefillFeatures(batch));
        py.push_back(y);
        pw.push_back(1.0 / y);  // Minimize relative error.
      }
    }
    Fit pf;
    pf.theta = SolveLeastSquares(px, py, pw);
    for (std::size_t i = 0; i < px.size(); ++i) {
      const double pred = Dot(pf.theta, px[i]);
      pf.max_relative_error = std::max(
          pf.max_relative_error, std::fabs(pred - py[i]) / py[i]);
    }
    predictor.prefill_fits_[sms] = std::move(pf);

    // --- Decode fit ---
    std::vector<std::vector<double>> dx;
    std::vector<double> dy, dw;
    for (int bs : batch_grid) {
      for (std::int64_t ctx : decode_ctx_grid) {
        const std::vector<std::int64_t> lens(static_cast<std::size_t>(bs),
                                             ctx);
        const gpu::Kernel kernel = cost_model.DecodeIteration(lens);
        const double y = device.SoloDurationSeconds(kernel, sms);
        dx.push_back(DecodeFeatures(lens));
        dy.push_back(y);
        dw.push_back(1.0 / y);
      }
    }
    Fit df;
    df.theta = SolveLeastSquares(dx, dy, dw);
    for (std::size_t i = 0; i < dx.size(); ++i) {
      const double pred = Dot(df.theta, dx[i]);
      df.max_relative_error = std::max(
          df.max_relative_error, std::fabs(pred - dy[i]) / dy[i]);
    }
    predictor.decode_fits_[sms] = std::move(df);
  }
  return predictor;
}

const SoloRunPredictor::Fit& SoloRunPredictor::PrefillFit(int sms) const {
  MUX_CHECK(!prefill_fits_.empty());
  auto it = prefill_fits_.upper_bound(sms);
  if (it == prefill_fits_.begin()) return it->second;
  return std::prev(it)->second;
}

const SoloRunPredictor::Fit& SoloRunPredictor::DecodeFit(int sms) const {
  MUX_CHECK(!decode_fits_.empty());
  auto it = decode_fits_.upper_bound(sms);
  if (it == decode_fits_.begin()) return it->second;
  return std::prev(it)->second;
}

sim::Duration SoloRunPredictor::PredictPrefill(
    const std::vector<SeqWork>& batch, int sms) const {
  const Fit& fit = PrefillFit(sms);
  const double seconds = std::max(0.0, Dot(fit.theta, PrefillFeatures(batch)));
  return static_cast<sim::Duration>(seconds * 1e9);
}

sim::Duration SoloRunPredictor::PredictDecode(
    const std::vector<std::int64_t>& context_lens, int sms) const {
  const Fit& fit = DecodeFit(sms);
  const double seconds =
      std::max(0.0, Dot(fit.theta, DecodeFeatures(context_lens)));
  return static_cast<sim::Duration>(seconds * 1e9);
}

double SoloRunPredictor::PrefillMaxError(int sms) const {
  return PrefillFit(sms).max_relative_error;
}

double SoloRunPredictor::DecodeMaxError(int sms) const {
  return DecodeFit(sms).max_relative_error;
}

std::vector<int> SoloRunPredictor::TrainedSmOptions() const {
  std::vector<int> options;
  options.reserve(prefill_fits_.size());
  for (const auto& [sms, fit] : prefill_fits_) options.push_back(sms);
  return options;
}

}  // namespace muxwise::llm
