#include "llm/cost_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "sim/logging.h"

namespace muxwise::llm {

namespace {

/** Per-kernel launch cost when issuing a phase without CUDA graphs. */
constexpr sim::Duration kRawLaunchPerLayer = sim::Microseconds(250);

/** Launch cost of one piecewise layer CUDA graph. */
constexpr sim::Duration kLayerGraphLaunch = sim::Microseconds(125);

/** Launch cost of one full-iteration decode CUDA graph. */
constexpr sim::Duration kDecodeGraphLaunch = sim::Microseconds(500);

/** Collective handshake latency per all-reduce. */
constexpr double kAllReduceLatencySeconds = 10e-6;

}  // namespace

CostModel::CostModel(ModelConfig model, int tp_degree, gpu::GpuSpec spec)
    : model_(std::move(model)),
      tp_(tp_degree),
      spec_(std::move(spec)),
      prefill_tag_(gpu::InternKernelTag("prefill-layers")),
      decode_tag_(gpu::InternKernelTag("decode-iter")),
      fused_tag_(gpu::InternKernelTag("fused-chunk")) {
  MUX_CHECK(tp_ >= 1);
  MUX_CHECK(model_.num_layers > 0);
}

double CostModel::KvBytesPerTokenPerGpu() const {
  // KV heads shard across the TP group (min one head per GPU).
  return model_.KvBytesPerToken() / std::min(tp_, model_.num_kv_heads);
}

double CostModel::WeightBytesPerGpu() const {
  return model_.WeightBytes() / tp_;
}

sim::Duration CostModel::AllReduceTime(double tokens, int num_layers) const {
  if (tp_ <= 1) return 0;
  // Two ring all-reduces per layer (attention out-proj, FFN out-proj).
  const double message_bytes = tokens * model_.hidden_dim * model_.dtype_bytes;
  const double wire_seconds =
      2.0 * (tp_ - 1) / tp_ * message_bytes / spec_.nvlink_bandwidth;
  const double per_layer = 2.0 * (kAllReduceLatencySeconds + wire_seconds);
  return static_cast<sim::Duration>(per_layer * num_layers * 1e9);
}

double CostModel::PrefillGemmFlops(const std::vector<SeqWork>& batch) const {
  double flops = 0.0;
  for (const SeqWork& seq : batch) {
    // GEMMs: O(n d^2) across all layers == 2 * active params per token.
    flops += 2.0 * model_.active_params * static_cast<double>(seq.new_tokens);
  }
  return flops;
}

double CostModel::PrefillAttentionFlops(
    const std::vector<SeqWork>& batch) const {
  double flops = 0.0;
  for (const SeqWork& seq : batch) {
    const double n = static_cast<double>(seq.new_tokens);
    const double r = static_cast<double>(seq.reused_tokens);
    // Attention: O(L n d) with cache — each new token attends the reused
    // context plus the causal half of the new tokens.
    flops += 4.0 * model_.num_layers * model_.hidden_dim * n * (r + n / 2.0);
  }
  return flops;
}

double CostModel::PrefillFlopsTotal(const std::vector<SeqWork>& batch) const {
  return PrefillGemmFlops(batch) + PrefillAttentionFlops(batch);
}

gpu::Kernel CostModel::PrefillLayers(const std::vector<SeqWork>& batch,
                                     int num_layers) const {
  MUX_CHECK(num_layers >= 1 && num_layers <= model_.num_layers);
  const double layer_frac =
      static_cast<double>(num_layers) / model_.num_layers;

  double new_tokens = 0.0;
  double attended_kv_tokens = 0.0;
  for (const SeqWork& seq : batch) {
    new_tokens += static_cast<double>(seq.new_tokens);
    attended_kv_tokens += static_cast<double>(seq.reused_tokens);
  }

  const double gemm_flops = PrefillGemmFlops(batch) * layer_frac / tp_;
  const double attn_flops = PrefillAttentionFlops(batch) * layer_frac / tp_;
  double bytes = WeightBytesPerGpu() * layer_frac;  // Stream the shard once.
  // Read the reused context KV, write KV for the new tokens.
  bytes += (attended_kv_tokens + new_tokens) * KvBytesPerTokenPerGpu() *
           layer_frac;
  // Activation traffic (residual stream in/out per layer).
  bytes += 4.0 * new_tokens * model_.hidden_dim * model_.dtype_bytes *
           num_layers / tp_;

  gpu::Kernel kernel = gpu::Kernel::Prefill(gemm_flops, bytes);
  kernel.work_items = new_tokens;  // GEMM rows (per-layer token count).
  // Tensor parallelism slices each GEMM tp ways, so saturating the SMs
  // needs proportionally more rows (the 70B/TP8 sweet spot near 4K of
  // paper Fig. 6-a; an unsharded 8B saturates around 512).
  kernel.saturation_half_items = 70.0 * tp_;
  kernel.stream_flops = attn_flops;  // Cache attention, fixed efficiency.
  kernel.fixed_time = AllReduceTime(new_tokens, num_layers);
  kernel.tag = prefill_tag_;
  return kernel;
}

gpu::Kernel CostModel::PrefillPhase(const std::vector<SeqWork>& batch) const {
  return PrefillLayers(batch, model_.num_layers);
}

double CostModel::DecodeFlopsTotal(
    const std::vector<std::int64_t>& context_lens) const {
  const double bs = static_cast<double>(context_lens.size());
  const double total_context = static_cast<double>(
      std::accumulate(context_lens.begin(), context_lens.end(),
                      std::int64_t{0}));
  return 2.0 * model_.active_params * bs +
         4.0 * model_.num_layers * model_.hidden_dim * total_context;
}

gpu::Kernel CostModel::DecodeIteration(
    const std::vector<std::int64_t>& context_lens) const {
  MUX_CHECK(!context_lens.empty());
  const double bs = static_cast<double>(context_lens.size());
  const double total_context = static_cast<double>(
      std::accumulate(context_lens.begin(), context_lens.end(),
                      std::int64_t{0}));

  const double gemm_flops = 2.0 * model_.active_params * bs / tp_;
  const double attn_flops =
      4.0 * model_.num_layers * model_.hidden_dim * total_context / tp_;
  double bytes = model_.DecodeWeightBytes(static_cast<int>(bs)) / tp_;
  bytes += total_context * KvBytesPerTokenPerGpu();  // Attend all cached KV.
  bytes += bs * KvBytesPerTokenPerGpu();             // Write one token each.

  gpu::Kernel kernel = gpu::Kernel::Decode(gemm_flops, bytes);
  kernel.stream_flops = attn_flops;
  kernel.fixed_time = AllReduceTime(bs, model_.num_layers);
  kernel.tag = decode_tag_;
  return kernel;
}

gpu::Kernel CostModel::FusedChunk(
    const std::vector<SeqWork>& chunks,
    const std::vector<std::int64_t>& decode_context_lens) const {
  const bool has_prefill = !chunks.empty();
  gpu::Kernel prefill =
      has_prefill ? PrefillPhase(chunks) : gpu::Kernel::Fused(0.0, 0.0);
  gpu::Kernel decode = decode_context_lens.empty()
                           ? gpu::Kernel::Fused(0.0, 0.0)
                           : DecodeIteration(decode_context_lens);

  // The fused iteration executes both token sets through the same layer
  // pass; weights are streamed once, not twice.
  double bytes = prefill.bytes + decode.bytes;
  if (has_prefill && !decode_context_lens.empty()) {
    bytes -= WeightBytesPerGpu();
  }
  gpu::Kernel kernel = gpu::Kernel::Fused(prefill.flops + decode.flops, bytes);
  // Fused GEMMs span the chunk tokens plus one row per decoding seq.
  kernel.work_items =
      prefill.work_items + static_cast<double>(decode_context_lens.size());
  kernel.saturation_half_items = 70.0 * tp_;
  kernel.stream_flops = prefill.stream_flops + decode.stream_flops;
  kernel.fixed_time = std::max(prefill.fixed_time, decode.fixed_time);
  kernel.tag = fused_tag_;
  return kernel;
}

sim::Duration CostModel::DecodeGraphLaunch() const {
  return kDecodeGraphLaunch;
}

sim::Duration CostModel::PrefillLayerLaunch() const {
  return kLayerGraphLaunch;
}

sim::Duration CostModel::PrefillFullLaunch() const {
  return kRawLaunchPerLayer * model_.num_layers;
}

}  // namespace muxwise::llm
