#ifndef MUXWISE_LLM_LEAST_SQUARES_H_
#define MUXWISE_LLM_LEAST_SQUARES_H_

#include <vector>

namespace muxwise::llm {

/**
 * Solves min ||X theta - y||^2 via the normal equations with partial-
 * pivot Gaussian elimination. Rows may carry weights (row i scaled by
 * w[i]); pass an empty weight vector for uniform weighting.
 *
 * Returns the coefficient vector (size = number of columns). Fatal if
 * the system is singular beyond repair (callers control the design
 * matrix, so this indicates a programming error).
 */
std::vector<double> SolveLeastSquares(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& targets,
    const std::vector<double>& weights = {});

}  // namespace muxwise::llm

#endif  // MUXWISE_LLM_LEAST_SQUARES_H_
