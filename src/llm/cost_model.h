#ifndef MUXWISE_LLM_COST_MODEL_H_
#define MUXWISE_LLM_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "gpu/gpu_spec.h"
#include "gpu/kernel.h"
#include "llm/model_config.h"
#include "sim/time.h"

namespace muxwise::llm {

/**
 * Per-sequence token accounting for one prefill pass.
 * `new_tokens` (n) must be processed; `reused_tokens` (r) are served from
 * the KV cache and only read during attention — the paper's Table 2
 * "Prefill w/ cache" row.
 */
struct SeqWork {
  std::int64_t new_tokens = 0;
  std::int64_t reused_tokens = 0;
};

/**
 * Builds GPU kernels (per-GPU FLOPs / bytes / fixed time) for prefill
 * layers, decode iterations and chunked-prefill fused iterations of a
 * model deployed with symmetric tensor parallelism.
 *
 * FLOP accounting follows the complexity table of the paper (§3.3.2,
 * Table 2): GEMMs contribute 2 * active_params per processed token, and
 * attention contributes 4 * d_model per (query token, context token)
 * pair. Bytes cover streamed weights, KV reads of the attended context
 * and KV writes of produced tokens. Tensor-parallel all-reduces
 * contribute serial `fixed_time` per layer.
 */
class CostModel {
 public:
  CostModel(ModelConfig model, int tp_degree, gpu::GpuSpec spec);

  const ModelConfig& model() const { return model_; }
  int tp_degree() const { return tp_; }

  /**
   * Kernel executing `num_layers` consecutive transformer layers of the
   * prefill pass for a batch of sequences. Splitting the pass into
   * layer-granular kernels is exact: every layer does the same work.
   */
  gpu::Kernel PrefillLayers(const std::vector<SeqWork>& batch,
                            int num_layers) const;

  /** Whole prefill pass as a single kernel (all layers). */
  gpu::Kernel PrefillPhase(const std::vector<SeqWork>& batch) const;

  /**
   * Kernel for one decode iteration over `context_lens` (current context
   * length per running sequence; one new token each).
   */
  gpu::Kernel DecodeIteration(const std::vector<std::int64_t>& context_lens)
      const;

  /**
   * Chunked-prefill fused iteration: one or more prefill chunks (each a
   * SeqWork whose `reused_tokens` counts every token already in the KV
   * cache for that request — reused context plus earlier chunks) fused
   * with a decode iteration. Weights are streamed once for the whole
   * fused pass.
   */
  gpu::Kernel FusedChunk(const std::vector<SeqWork>& chunks,
                         const std::vector<std::int64_t>& decode_context_lens)
      const;

  /** KV-cache bytes per token, per GPU of the TP group. */
  double KvBytesPerTokenPerGpu() const;

  /** Resident weight bytes per GPU. */
  double WeightBytesPerGpu() const;

  // --- Host launch-latency model (paper §3.2.2) ---

  /** One CUDA-graph launch of a full decode iteration (~0.5 ms). */
  sim::Duration DecodeGraphLaunch() const;

  /** Piecewise per-layer CUDA-graph launch for prefill. */
  sim::Duration PrefillLayerLaunch() const;

  /** Launching the entire prefill phase kernel-by-kernel at once. */
  sim::Duration PrefillFullLaunch() const;

  // --- Raw totals used by the solo-run predictor features ---

  double PrefillFlopsTotal(const std::vector<SeqWork>& batch) const;
  double PrefillGemmFlops(const std::vector<SeqWork>& batch) const;
  double PrefillAttentionFlops(const std::vector<SeqWork>& batch) const;
  double DecodeFlopsTotal(const std::vector<std::int64_t>& context_lens) const;

 private:
  /** All-reduce serial time for a pass moving `tokens` activations. */
  sim::Duration AllReduceTime(double tokens, int num_layers) const;

  ModelConfig model_;
  int tp_;
  gpu::GpuSpec spec_;

  // Kernel labels interned once at construction; every generated kernel
  // carries an id instead of a std::string (hot-path allocation removal).
  gpu::KernelTagId prefill_tag_;
  gpu::KernelTagId decode_tag_;
  gpu::KernelTagId fused_tag_;
};

}  // namespace muxwise::llm

#endif  // MUXWISE_LLM_COST_MODEL_H_
