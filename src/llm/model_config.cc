#include "llm/model_config.h"

#include <cmath>

#include "sim/logging.h"

namespace muxwise::llm {

double ModelConfig::KvBytesPerToken() const {
  return 2.0 * num_layers * num_kv_heads * head_dim * dtype_bytes;
}

double ModelConfig::WeightBytes() const { return total_params * dtype_bytes; }

double ModelConfig::ActiveWeightBytes() const {
  return active_params * dtype_bytes;
}

double ModelConfig::DecodeWeightBytes(int batch) const {
  if (!IsMoe()) return WeightBytes();
  MUX_CHECK(batch >= 1);
  // Expert FFN weights dominate an MoE's footprint; attention and shared
  // projections are covered by the activated-parameter estimate.
  const double expert_params =
      (total_params - active_params) /
      (1.0 - static_cast<double>(experts_per_token) / num_experts);
  const double per_expert_bytes = expert_params / num_experts * dtype_bytes;
  const double shared_bytes = WeightBytes() - expert_params * dtype_bytes;
  // Probability a given expert is activated by at least one of the
  // batch * experts_per_token routed slots.
  const double p_active =
      1.0 - std::pow(1.0 - static_cast<double>(experts_per_token) / num_experts,
                     batch);
  const double expected_experts = num_experts * p_active;
  return shared_bytes + expected_experts * per_expert_bytes;
}

ModelConfig ModelConfig::Llama8B() {
  ModelConfig m;
  m.name = "Llama-8B";
  m.num_layers = 32;
  m.hidden_dim = 4096;
  m.num_heads = 32;
  m.num_kv_heads = 8;
  m.head_dim = 128;
  m.ffn_dim = 14336;
  m.vocab_size = 128256;
  m.total_params = 8.0e9;
  m.active_params = 8.0e9;
  return m;
}

ModelConfig ModelConfig::Llama70B() {
  ModelConfig m;
  m.name = "Llama-70B";
  m.num_layers = 80;
  m.hidden_dim = 8192;
  m.num_heads = 64;
  m.num_kv_heads = 8;
  m.head_dim = 128;
  m.ffn_dim = 28672;
  m.vocab_size = 128256;
  m.total_params = 70.0e9;
  m.active_params = 70.0e9;
  return m;
}

ModelConfig ModelConfig::Qwen235B() {
  ModelConfig m;
  m.name = "Qwen3-235B-A22B";
  m.num_layers = 94;
  m.hidden_dim = 4096;
  m.num_heads = 64;
  m.num_kv_heads = 4;
  m.head_dim = 128;
  m.ffn_dim = 1536;  // Per-expert MoE intermediate size.
  m.vocab_size = 151936;
  m.num_experts = 128;
  m.experts_per_token = 8;
  m.total_params = 235.0e9;
  m.active_params = 22.0e9;
  return m;
}

ModelConfig ModelConfig::CodeLlama34B() {
  ModelConfig m;
  m.name = "CodeLlama-34B";
  m.num_layers = 48;
  m.hidden_dim = 8192;
  m.num_heads = 64;
  m.num_kv_heads = 8;
  m.head_dim = 128;
  m.ffn_dim = 22016;
  m.vocab_size = 32016;
  m.max_context = 16384;
  m.total_params = 34.0e9;
  m.active_params = 34.0e9;
  return m;
}

ModelConfig ModelConfig::ByName(const std::string& name) {
  if (name == "Llama-8B") return Llama8B();
  if (name == "Llama-70B") return Llama70B();
  if (name == "Qwen3-235B-A22B" || name == "Qwen-235B") return Qwen235B();
  if (name == "CodeLlama-34B") return CodeLlama34B();
  sim::Fatal("unknown model: " + name);
}

}  // namespace muxwise::llm
