#include "llm/least_squares.h"

#include <cmath>
#include <cstddef>

#include "sim/logging.h"

namespace muxwise::llm {

std::vector<double> SolveLeastSquares(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& targets, const std::vector<double>& weights) {
  MUX_CHECK(!rows.empty());
  MUX_CHECK(rows.size() == targets.size());
  const std::size_t dim = rows.front().size();
  MUX_CHECK(dim > 0);

  // Accumulate the normal equations A = X^T W X, b = X^T W y.
  std::vector<std::vector<double>> a(dim, std::vector<double>(dim, 0.0));
  std::vector<double> b(dim, 0.0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    MUX_CHECK(rows[i].size() == dim);
    const double w = weights.empty() ? 1.0 : weights[i] * weights[i];
    for (std::size_t j = 0; j < dim; ++j) {
      b[j] += w * rows[i][j] * targets[i];
      for (std::size_t k = 0; k < dim; ++k) {
        a[j][k] += w * rows[i][j] * rows[i][k];
      }
    }
  }
  // Tikhonov damping keeps near-collinear designs solvable.
  for (std::size_t j = 0; j < dim; ++j) a[j][j] += 1e-12 * (a[j][j] + 1.0);

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < dim; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < dim; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    if (std::fabs(a[pivot][col]) < 1e-300) {
      sim::Panic("SolveLeastSquares: singular normal equations");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t row = col + 1; row < dim; ++row) {
      const double f = a[row][col] / a[col][col];
      for (std::size_t k = col; k < dim; ++k) a[row][k] -= f * a[col][k];
      b[row] -= f * b[col];
    }
  }
  std::vector<double> theta(dim, 0.0);
  for (std::size_t col = dim; col-- > 0;) {
    double sum = b[col];
    for (std::size_t k = col + 1; k < dim; ++k) sum -= a[col][k] * theta[k];
    theta[col] = sum / a[col][col];
  }
  return theta;
}

}  // namespace muxwise::llm
