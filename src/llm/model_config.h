#ifndef MUXWISE_LLM_MODEL_CONFIG_H_
#define MUXWISE_LLM_MODEL_CONFIG_H_

#include <cstdint>
#include <string>

namespace muxwise::llm {

/**
 * Architecture description of a served transformer LLM.
 *
 * Only the quantities that determine compute / memory demands are kept:
 * the simulator never touches weights or numerics. MoE models carry the
 * expert geometry needed to model activated-parameter compute and the
 * expected fraction of expert weights streamed per decode iteration.
 */
struct ModelConfig {
  std::string name;

  int num_layers = 0;
  int hidden_dim = 0;   // d_model.
  int num_heads = 0;
  int num_kv_heads = 0; // GQA groups.
  int head_dim = 0;
  int ffn_dim = 0;      // Intermediate size (per expert for MoE).
  int vocab_size = 0;
  int dtype_bytes = 2;  // BF16 serving.
  int max_context = 131072;

  // Mixture-of-experts geometry (0/0 for dense models).
  int num_experts = 0;
  int experts_per_token = 0;

  /** Total parameter count (weights resident in HBM). */
  double total_params = 0.0;

  /** Parameters activated per token (== total for dense models). */
  double active_params = 0.0;

  /** KV-cache bytes per token across all layers (K and V). */
  double KvBytesPerToken() const;

  /** Resident weight bytes. */
  double WeightBytes() const;

  /** Weight bytes touched by one token's forward pass. */
  double ActiveWeightBytes() const;

  /**
   * Expected weight bytes streamed by one decode iteration of batch size
   * `batch`. Dense models stream everything once; MoE models stream the
   * expected number of distinct activated experts plus shared weights.
   */
  double DecodeWeightBytes(int batch) const;

  /** True when the model routes through experts. */
  bool IsMoe() const { return num_experts > 0; }

  static ModelConfig Llama8B();
  static ModelConfig Llama70B();
  static ModelConfig Qwen235B();
  static ModelConfig CodeLlama34B();

  /** Lookup by name; fatal on unknown. */
  static ModelConfig ByName(const std::string& name);
};

}  // namespace muxwise::llm

#endif  // MUXWISE_LLM_MODEL_CONFIG_H_
