#ifndef MUXWISE_LLM_PREDICTOR_H_
#define MUXWISE_LLM_PREDICTOR_H_

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "gpu/gpu.h"
#include "llm/cost_model.h"
#include "sim/time.h"

namespace muxwise::llm {

/**
 * The paper's solo-run latency predictor (§3.3.2, Eq. 1 and Eq. 2).
 *
 * Per SM-allocation option it fits, against offline profiling of the
 * (simulated) device:
 *
 *   T_prefill = th1 * sum(n_i^2) + th2 * sum(n_i r_i) + th3 * sum(n_i) + th4
 *   T_decode  = th1 * sum(r_i)   + th2 * bs           + th3
 *
 * Training also records the maximum relative deviation per phase; the
 * caller (MuxWise's estimator) inflates predictions by that margin when
 * it needs worst-case numbers.
 */
class SoloRunPredictor {
 public:
  /** Fitted coefficients and achieved accuracy for one SM option. */
  struct Fit {
    std::vector<double> theta;
    double max_relative_error = 0.0;
  };

  SoloRunPredictor() = default;

  /**
   * Trains against analytic solo-run durations on `device` for every SM
   * allocation in `sm_options` (paper: one-time offline profiling per
   * LLM-machine pair, a few hours there, milliseconds here).
   */
  static SoloRunPredictor Train(const gpu::Gpu& device,
                                const CostModel& cost_model,
                                const std::vector<int>& sm_options);

  /** Predicted solo-run prefill-phase duration on `sms` SMs. */
  sim::Duration PredictPrefill(const std::vector<SeqWork>& batch,
                               int sms) const;

  /** Predicted solo-run decode-iteration duration on `sms` SMs. */
  sim::Duration PredictDecode(const std::vector<std::int64_t>& context_lens,
                              int sms) const;

  /** Worst observed relative training error for prefill at `sms`. */
  double PrefillMaxError(int sms) const;

  /** Worst observed relative training error for decode at `sms`. */
  double DecodeMaxError(int sms) const;

  /** SM options the predictor was trained for. */
  std::vector<int> TrainedSmOptions() const;

 private:
  /** Nearest trained option <= sms (or the smallest trained option). */
  const Fit& PrefillFit(int sms) const;
  const Fit& DecodeFit(int sms) const;

  std::map<int, Fit> prefill_fits_;
  std::map<int, Fit> decode_fits_;
};

}  // namespace muxwise::llm

#endif  // MUXWISE_LLM_PREDICTOR_H_
