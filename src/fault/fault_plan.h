#ifndef MUXWISE_FAULT_FAULT_PLAN_H_
#define MUXWISE_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace muxwise::fault {

/**
 * One instance crash: at `at` the instance loses every in-flight kernel
 * and its entire KV pool; at `recover_at` (kTimeNever = never) it
 * rejoins cold. Instance indices are mapped onto an engine's fault
 * domains modulo Engine::NumFaultDomains(), so the same plan drives
 * aggregated (one domain) and disaggregated (two domains) engines.
 */
struct CrashEvent {
  std::size_t instance = 0;
  sim::Time at = 0;
  sim::Time recover_at = sim::kTimeNever;
};

/** Kernels on `instance` run `slowdown`x slower during [from, to). */
struct StragglerWindow {
  std::size_t instance = 0;
  sim::Time from = 0;
  sim::Time to = 0;
  double slowdown = 2.0;
};

/**
 * During [from, to), each interconnect transfer attempt is lost with
 * `failure_probability` (the link retries with backoff; see
 * gpu::Interconnect::FaultModel).
 */
struct TransferFaultWindow {
  sim::Time from = 0;
  sim::Time to = 0;
  double failure_probability = 0.01;
};

/**
 * Grey failure: during [from, to) the instance answers heartbeats and
 * control traffic but its kernels stop completing (the device freezes,
 * retaining partial progress). A zombie looks Healthy to a deadline
 * detector — only a work-progress watermark exposes it. The window must
 * end (`to` finite) so runs can drain.
 */
struct ZombieWindow {
  std::size_t instance = 0;
  sim::Time from = 0;
  sim::Time to = 0;
};

/**
 * Grey failure: during [from, to) a target flaps up/down periodically.
 * Each period starts with a down phase of length period * (1 - duty_up)
 * followed by an up phase; the target is forced up at `to`. With
 * `link` true the engine's FaultableLink() flaps (down-phase transfer
 * attempts are deterministically lost and retried); otherwise the
 * instance's replica->router heartbeat path flaps (the FSM sees
 * intermittent silence — the hysteresis test case).
 */
struct FlapWindow {
  std::size_t instance = 0;
  bool link = false;
  sim::Time from = 0;
  sim::Time to = 0;
  sim::Duration period = 0;
  double duty_up = 0.5;
};

/**
 * Grey failure: during [from, to) capacity silently degrades by
 * constant factors in (0, 1]. With `link` false the instance's device
 * roofline shrinks — effective FLOPs scale by `flops_factor`, the HBM
 * share by `bandwidth_factor` — while the planner's predictions stay
 * untouched (degradation is exactly a model/reality gap). With `link`
 * true the engine's FaultableLink() bandwidth scales by
 * `bandwidth_factor` (flops_factor must stay 1), feeding the
 * spill-vs-recompute costing a slower wire.
 */
struct DegradeWindow {
  std::size_t instance = 0;
  bool link = false;
  sim::Time from = 0;
  sim::Time to = 0;
  double flops_factor = 1.0;
  double bandwidth_factor = 1.0;
};

/**
 * Grey failure: an asymmetric partition during [from, to). With
 * `drop_from_replica` the replica->router direction is cut — heartbeats
 * go silent while the replica keeps serving (deadline detection fires
 * and fails over a live instance). With `drop_to_replica` the
 * router->replica direction is cut — new dispatches cannot reach it
 * while its heartbeats still arrive (the router must stop routing to an
 * instance that looks alive). Exactly one direction must be set: both
 * is indistinguishable from a crash (use Crash), neither is a no-op.
 */
struct PartitionWindow {
  std::size_t instance = 0;
  sim::Time from = 0;
  sim::Time to = 0;
  bool drop_to_replica = false;
  bool drop_from_replica = false;
};

/**
 * A deterministic chaos schedule. All times are simulator times — the
 * injector schedules plan entries as ordinary events, so a plan is as
 * reproducible as the workload trace it runs against; `seed` forks the
 * stream used for per-attempt transfer-loss draws.
 *
 * Built fluently:
 *
 *   FaultPlan plan;
 *   plan.Crash(0, sim::Seconds(30), sim::Seconds(45))
 *       .Straggle(0, sim::Seconds(50), sim::Seconds(60), 2.0)
 *       .DropTransfers(sim::Seconds(0), sim::Seconds(120), 0.01);
 */
struct FaultPlan {
  std::uint64_t seed = 0x101u;
  std::vector<CrashEvent> crashes;
  std::vector<StragglerWindow> stragglers;
  std::vector<TransferFaultWindow> transfer_faults;
  std::vector<ZombieWindow> zombies;
  std::vector<FlapWindow> flaps;
  std::vector<DegradeWindow> degrades;
  std::vector<PartitionWindow> partitions;

  bool Empty() const {
    return crashes.empty() && stragglers.empty() && transfer_faults.empty() &&
           zombies.empty() && flaps.empty() && degrades.empty() &&
           partitions.empty();
  }

  FaultPlan& Crash(std::size_t instance, sim::Time at,
                   sim::Time recover_at = sim::kTimeNever);
  FaultPlan& Straggle(std::size_t instance, sim::Time from, sim::Time to,
                      double slowdown);
  FaultPlan& DropTransfers(sim::Time from, sim::Time to, double p);
  FaultPlan& Zombie(std::size_t instance, sim::Time from, sim::Time to);
  FaultPlan& Flap(std::size_t instance, sim::Time from, sim::Time to,
                  sim::Duration period, double duty_up);
  FaultPlan& FlapLink(sim::Time from, sim::Time to, sim::Duration period,
                      double duty_up);
  FaultPlan& Degrade(std::size_t instance, sim::Time from, sim::Time to,
                     double flops_factor, double bandwidth_factor);
  FaultPlan& DegradeLink(sim::Time from, sim::Time to,
                         double bandwidth_factor);
  FaultPlan& Partition(std::size_t instance, sim::Time from, sim::Time to,
                       bool drop_to_replica, bool drop_from_replica);

  /**
   * Non-fatal validation: empty string when well-formed, else the first
   * defect found (the fuzzer filters generated plans through this
   * without dying). Rules: inverted or overlapping same-target windows,
   * slowdown < 1, a recover time at or before its crash time, infinite
   * zombie/flap/partition windows, flap period <= 0 or duty outside
   * (0, 1), degrade factors outside (0, 1] (link degrades must keep
   * flops_factor == 1), partitions with both directions dropped
   * (indistinguishable from a crash) or neither (a no-op).
   */
  std::string Check() const;

  /** Fatal on malformed entries: sim::Fatal(Check()) when non-empty. */
  void Validate() const;

  /** Human-readable one-line-per-entry schedule (logs, diagnostics). */
  std::string Describe() const;
};

}  // namespace muxwise::fault

#endif  // MUXWISE_FAULT_FAULT_PLAN_H_
