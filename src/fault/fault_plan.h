#ifndef MUXWISE_FAULT_FAULT_PLAN_H_
#define MUXWISE_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace muxwise::fault {

/**
 * One instance crash: at `at` the instance loses every in-flight kernel
 * and its entire KV pool; at `recover_at` (kTimeNever = never) it
 * rejoins cold. Instance indices are mapped onto an engine's fault
 * domains modulo Engine::NumFaultDomains(), so the same plan drives
 * aggregated (one domain) and disaggregated (two domains) engines.
 */
struct CrashEvent {
  std::size_t instance = 0;
  sim::Time at = 0;
  sim::Time recover_at = sim::kTimeNever;
};

/** Kernels on `instance` run `slowdown`x slower during [from, to). */
struct StragglerWindow {
  std::size_t instance = 0;
  sim::Time from = 0;
  sim::Time to = 0;
  double slowdown = 2.0;
};

/**
 * During [from, to), each interconnect transfer attempt is lost with
 * `failure_probability` (the link retries with backoff; see
 * gpu::Interconnect::FaultModel).
 */
struct TransferFaultWindow {
  sim::Time from = 0;
  sim::Time to = 0;
  double failure_probability = 0.01;
};

/**
 * A deterministic chaos schedule. All times are simulator times — the
 * injector schedules plan entries as ordinary events, so a plan is as
 * reproducible as the workload trace it runs against; `seed` forks the
 * stream used for per-attempt transfer-loss draws.
 *
 * Built fluently:
 *
 *   FaultPlan plan;
 *   plan.Crash(0, sim::Seconds(30), sim::Seconds(45))
 *       .Straggle(0, sim::Seconds(50), sim::Seconds(60), 2.0)
 *       .DropTransfers(sim::Seconds(0), sim::Seconds(120), 0.01);
 */
struct FaultPlan {
  std::uint64_t seed = 0x101u;
  std::vector<CrashEvent> crashes;
  std::vector<StragglerWindow> stragglers;
  std::vector<TransferFaultWindow> transfer_faults;

  bool Empty() const {
    return crashes.empty() && stragglers.empty() && transfer_faults.empty();
  }

  FaultPlan& Crash(std::size_t instance, sim::Time at,
                   sim::Time recover_at = sim::kTimeNever);
  FaultPlan& Straggle(std::size_t instance, sim::Time from, sim::Time to,
                      double slowdown);
  FaultPlan& DropTransfers(sim::Time from, sim::Time to, double p);

  /**
   * Fatal on malformed entries: inverted windows, slowdown < 1, a
   * recover time at or before its crash time, or overlapping crash
   * windows on one instance (a second crash inside — or after a
   * never-recovering — window would silently misorder the injected
   * crash/recover events).
   */
  void Validate() const;

  /** Human-readable one-line-per-entry schedule (logs, diagnostics). */
  std::string Describe() const;
};

}  // namespace muxwise::fault

#endif  // MUXWISE_FAULT_FAULT_PLAN_H_
