#ifndef MUXWISE_FAULT_RECOVERY_H_
#define MUXWISE_FAULT_RECOVERY_H_

#include <cstdint>

#include "sim/time.h"
#include "workload/request_spec.h"
#include "workload/slo.h"

namespace muxwise::fault {

/**
 * Engine-side failure-recovery knobs. Defaults keep recovery disabled so
 * every existing scenario runs byte-identically; the harness enables it
 * whenever a fault plan is attached.
 *
 * The policy implements the paper-consistent triage order under faults:
 * shed new work first (admission control), abandon hopeless work second
 * (deadlines derived from the SLO), and only declare a request failed
 * when crashes have repeatedly destroyed its progress.
 */
struct RecoveryPolicy {
  /** Master switch; when false every knob below is inert. */
  bool enabled = false;

  /**
   * A request is abandoned once it has waited this multiple of its
   * length-scaled TTFT target plus the TPOT-scaled decode budget (see
   * RequestDeadline). 10x the p99 target is far beyond any SLO-attaining
   * completion, so deadline reaping never perturbs a healthy run.
   */
  double ttft_deadline_factor = 10.0;

  /** Decode-phase share of the deadline, in units of output * tbt. */
  double tpot_deadline_factor = 20.0;

  /** Crash re-enqueues allowed before a request is marked kFailed. */
  int max_crash_retries = 3;

  /**
   * Admission sheds a new request when the queued demand (including it)
   * exceeds this multiple of the engine's KV capacity. Queued demand is
   * a direct proxy for unservable backlog: KV the engine cannot hold
   * cannot start, so everything beyond the factor is hopeless work that
   * would only burn prefill cycles of in-flight decodes.
   */
  double shed_demand_factor = 1.5;

  /** Per-transfer attempt budget handed to faultable interconnects. */
  int max_transfer_attempts = 4;

  /** First retry backoff; doubles per attempt. */
  sim::Duration transfer_retry_backoff = sim::Milliseconds(2);
};

/**
 * Absolute give-up time for a request that arrived at `arrival`:
 *
 *   arrival + ttft_factor * TtftTarget(input) + tpot_factor * output * tbt
 *
 * Both terms scale with the request (long prompts and long generations
 * earn proportionally more patience), mirroring how the paper judges
 * TTFT per token and TPOT rather than absolute wall-clock latency.
 */
inline sim::Time RequestDeadline(sim::Time arrival,
                                 const workload::RequestSpec& spec,
                                 const workload::SloTargets& slo,
                                 const RecoveryPolicy& policy) {
  if (!policy.enabled) return sim::kTimeNever;
  const double budget =
      policy.ttft_deadline_factor *
          static_cast<double>(slo.TtftTargetFor(spec.input_tokens)) +
      policy.tpot_deadline_factor * static_cast<double>(spec.output_tokens) *
          static_cast<double>(slo.tbt);
  return arrival + static_cast<sim::Duration>(budget);
}

}  // namespace muxwise::fault

#endif  // MUXWISE_FAULT_RECOVERY_H_
