#ifndef MUXWISE_FAULT_INJECTOR_H_
#define MUXWISE_FAULT_INJECTOR_H_

#include <cstddef>

#include "check/invariant_registry.h"
#include "fault/fault_plan.h"
#include "fault/recovery.h"
#include "obs/trace.h"
#include "serve/engine.h"
#include "sim/simulator.h"

namespace muxwise::fault {

/**
 * Turns a FaultPlan into ordinary simulator events against one engine.
 *
 * Everything rides the simulated clock: crashes, recoveries, straggler
 * window edges, transfer-fault window edges, and the grey-failure
 * edges (zombie freeze/thaw, flap toggle trains, degrade begin/end,
 * partition begin/heal) are ScheduleAt() events, and transfer losses
 * draw from an Rng forked off the plan seed — so a chaos run is
 * exactly as deterministic as a fault-free one, and VerifyDeterminism
 * applies unchanged. (A flapped-down link loses attempts without
 * drawing randomness, so it never perturbs the loss stream.)
 *
 * Plan instance indices map onto the engine's fault domains modulo
 * Engine::NumFaultDomains(); link-targeted windows (transfer faults,
 * link flaps, link degrades) arm the engine's FaultableLink() (and are
 * dropped, counted in `windows_skipped`, for engines with no
 * inter-instance link).
 *
 * The injector must outlive the simulation and is bound to a single
 * engine per instance.
 */
class FaultInjector {
 public:
  FaultInjector(sim::Simulator* simulator, FaultPlan plan,
                RecoveryPolicy policy);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /**
   * Validates the plan and schedules its events against `engine`
   * (which must outlive the simulation). Call exactly once, before
   * running the simulator past the plan's first event.
   */
  void Arm(serve::Engine& engine);

  const FaultPlan& plan() const { return plan_; }

  std::size_t crashes_injected() const { return crashes_injected_; }
  std::size_t recoveries_injected() const { return recoveries_injected_; }
  std::size_t straggler_edges_injected() const {
    return straggler_edges_injected_;
  }
  std::size_t transfer_edges_injected() const {
    return transfer_edges_injected_;
  }
  std::size_t zombie_edges_injected() const { return zombie_edges_injected_; }
  std::size_t flap_edges_injected() const { return flap_edges_injected_; }
  std::size_t degrade_edges_injected() const {
    return degrade_edges_injected_;
  }
  std::size_t partition_edges_injected() const {
    return partition_edges_injected_;
  }

  /** Link-targeted windows (transfer, link flap, link degrade) dropped
   * because the engine has no FaultableLink(). */
  std::size_t windows_skipped() const { return windows_skipped_; }

  /**
   * Registers the delivery audit: at quiescence every scheduled
   * injection event has fired — the plan the scenario claims to have
   * survived is the plan it actually received.
   */
  void RegisterAudits(check::InvariantRegistry& registry) const;

  /**
   * Attaches a tracer: every injection firing emits an instant on the
   * "fault" track ("crash", "recovery", "straggler-begin/-end",
   * "transfer-window-begin/-end", "zombie-begin/-end", "flap-down/-up",
   * "degrade-begin/-end", "partition-begin/-end", id = the target
   * domain). Set before Arm(); injection timing is plan-driven and
   * never changes.
   */
  void SetTracer(obs::Tracer tracer) { tracer_ = tracer; }

 private:
  sim::Simulator* sim_;
  FaultPlan plan_;
  RecoveryPolicy policy_;
  bool armed_ = false;
  std::size_t events_scheduled_ = 0;
  std::size_t events_fired_ = 0;
  std::size_t crashes_injected_ = 0;
  std::size_t recoveries_injected_ = 0;
  std::size_t straggler_edges_injected_ = 0;
  std::size_t transfer_edges_injected_ = 0;
  std::size_t zombie_edges_injected_ = 0;
  std::size_t flap_edges_injected_ = 0;
  std::size_t degrade_edges_injected_ = 0;
  std::size_t partition_edges_injected_ = 0;
  std::size_t windows_skipped_ = 0;
  obs::Tracer tracer_;
};

}  // namespace muxwise::fault

#endif  // MUXWISE_FAULT_INJECTOR_H_
