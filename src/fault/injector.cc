#include "fault/injector.h"

#include <algorithm>
#include <string>

#include "gpu/cluster.h"
#include "sim/channel.h"
#include "sim/logging.h"
#include "sim/rng.h"

namespace muxwise::fault {

FaultInjector::FaultInjector(sim::Simulator* simulator, FaultPlan plan,
                             RecoveryPolicy policy)
    : sim_(simulator), plan_(std::move(plan)), policy_(policy) {
  MUX_CHECK(sim_ != nullptr);
}

void FaultInjector::Arm(serve::Engine& engine) {
  MUX_CHECK(!armed_);
  armed_ = true;
  plan_.Validate();
  const std::size_t domains = engine.NumFaultDomains();
  MUX_CHECK(domains >= 1);

  for (const CrashEvent& crash : plan_.crashes) {
    const std::size_t domain = crash.instance % domains;
    sim_->ScheduleAt(crash.at, [this, &engine, domain] {
      ++events_fired_;
      ++crashes_injected_;
      tracer_.Instant("fault", "crash", static_cast<std::int64_t>(domain));
      engine.InjectCrash(domain);
    });
    ++events_scheduled_;
    if (crash.recover_at != sim::kTimeNever) {
      sim_->ScheduleAt(crash.recover_at, [this, &engine, domain] {
        ++events_fired_;
        ++recoveries_injected_;
        tracer_.Instant("fault", "recovery",
                        static_cast<std::int64_t>(domain));
        engine.InjectRecovery(domain);
      });
      ++events_scheduled_;
    }
  }

  for (const StragglerWindow& window : plan_.stragglers) {
    const std::size_t domain = window.instance % domains;
    const double slowdown = window.slowdown;
    sim_->ScheduleAt(window.from, [this, &engine, domain, slowdown] {
      ++events_fired_;
      ++straggler_edges_injected_;
      tracer_.Instant("fault", "straggler-begin",
                      static_cast<std::int64_t>(domain), slowdown);
      engine.InjectStraggler(domain, slowdown);
    });
    sim_->ScheduleAt(window.to, [this, &engine, domain] {
      ++events_fired_;
      ++straggler_edges_injected_;
      tracer_.Instant("fault", "straggler-end",
                      static_cast<std::int64_t>(domain));
      engine.InjectStraggler(domain, 1.0);
    });
    events_scheduled_ += 2;
  }

  for (const ZombieWindow& window : plan_.zombies) {
    const std::size_t domain = window.instance % domains;
    sim_->ScheduleAt(window.from, [this, &engine, domain] {
      ++events_fired_;
      ++zombie_edges_injected_;
      tracer_.Instant("fault", "zombie-begin",
                      static_cast<std::int64_t>(domain));
      engine.InjectZombie(domain, true);
    });
    sim_->ScheduleAt(window.to, [this, &engine, domain] {
      ++events_fired_;
      ++zombie_edges_injected_;
      tracer_.Instant("fault", "zombie-end",
                      static_cast<std::int64_t>(domain));
      engine.InjectZombie(domain, false);
    });
    events_scheduled_ += 2;
  }

  for (const DegradeWindow& window : plan_.degrades) {
    if (window.link) {
      sim::Channel* link = engine.FaultableLink();
      if (link == nullptr) {
        ++windows_skipped_;
        continue;
      }
      const double bf = window.bandwidth_factor;
      sim_->ScheduleAt(window.from, [this, link, bf] {
        ++events_fired_;
        ++degrade_edges_injected_;
        tracer_.Instant("fault", "degrade-begin", 0, bf);
        link->SetBandwidthScale(bf);
      });
      sim_->ScheduleAt(window.to, [this, link] {
        ++events_fired_;
        ++degrade_edges_injected_;
        tracer_.Instant("fault", "degrade-end", 0);
        link->SetBandwidthScale(1.0);
      });
      events_scheduled_ += 2;
      continue;
    }
    const std::size_t domain = window.instance % domains;
    const double ff = window.flops_factor;
    const double bf = window.bandwidth_factor;
    sim_->ScheduleAt(window.from, [this, &engine, domain, ff, bf] {
      ++events_fired_;
      ++degrade_edges_injected_;
      tracer_.Instant("fault", "degrade-begin",
                      static_cast<std::int64_t>(domain), ff);
      engine.InjectDegrade(domain, ff, bf);
    });
    sim_->ScheduleAt(window.to, [this, &engine, domain] {
      ++events_fired_;
      ++degrade_edges_injected_;
      tracer_.Instant("fault", "degrade-end",
                      static_cast<std::int64_t>(domain));
      engine.InjectDegrade(domain, 1.0, 1.0);
    });
    events_scheduled_ += 2;
  }

  for (const PartitionWindow& window : plan_.partitions) {
    const std::size_t domain = window.instance % domains;
    const bool drop_to = window.drop_to_replica;
    const bool drop_from = window.drop_from_replica;
    sim_->ScheduleAt(window.from, [this, &engine, domain, drop_to,
                                   drop_from] {
      ++events_fired_;
      ++partition_edges_injected_;
      tracer_.Instant("fault", "partition-begin",
                      static_cast<std::int64_t>(domain));
      engine.InjectPartition(domain, drop_to, drop_from);
    });
    sim_->ScheduleAt(window.to, [this, &engine, domain] {
      ++events_fired_;
      ++partition_edges_injected_;
      tracer_.Instant("fault", "partition-end",
                      static_cast<std::int64_t>(domain));
      engine.InjectPartition(domain, false, false);
    });
    events_scheduled_ += 2;
  }

  for (const FlapWindow& window : plan_.flaps) {
    sim::Channel* link = nullptr;
    if (window.link) {
      link = engine.FaultableLink();
      if (link == nullptr) {
        ++windows_skipped_;
        continue;
      }
    }
    const std::size_t domain = window.instance % domains;
    // Each period opens with a down phase of length period*(1-duty_up)
    // (>= 1ns so every scheduled down edge has a matching up edge),
    // and the window closes forced-up at `to`.
    sim::Duration down_time = static_cast<sim::Duration>(
        static_cast<double>(window.period) * (1.0 - window.duty_up));
    if (down_time < 1) down_time = 1;
    for (sim::Time t = window.from; t < window.to; t += window.period) {
      const sim::Time up_at = std::min<sim::Time>(t + down_time, window.to);
      if (window.link) {
        sim_->ScheduleAt(t, [this, link] {
          ++events_fired_;
          ++flap_edges_injected_;
          tracer_.Instant("fault", "flap-down", 0);
          link->SetLinkUp(false);
        });
        sim_->ScheduleAt(up_at, [this, link] {
          ++events_fired_;
          ++flap_edges_injected_;
          tracer_.Instant("fault", "flap-up", 0);
          link->SetLinkUp(true);
        });
      } else {
        // A heartbeat flap is the replica->router direction winking in
        // and out: modelled as a partition silence toggle train.
        sim_->ScheduleAt(t, [this, &engine, domain] {
          ++events_fired_;
          ++flap_edges_injected_;
          tracer_.Instant("fault", "flap-down",
                          static_cast<std::int64_t>(domain));
          engine.InjectPartition(domain, false, true);
        });
        sim_->ScheduleAt(up_at, [this, &engine, domain] {
          ++events_fired_;
          ++flap_edges_injected_;
          tracer_.Instant("fault", "flap-up",
                          static_cast<std::int64_t>(domain));
          engine.InjectPartition(domain, false, false);
        });
      }
      events_scheduled_ += 2;
    }
  }

  if (!plan_.transfer_faults.empty()) {
    sim::Channel* link = engine.FaultableLink();
    if (link == nullptr) {
      windows_skipped_ += plan_.transfer_faults.size();
    } else {
      sim::Channel::FaultModel model;
      model.failure_probability = 0.0;  // Armed but inert until a window.
      model.max_attempts = policy_.max_transfer_attempts;
      model.initial_backoff = policy_.transfer_retry_backoff;
      link->EnableFaults(model,
                         sim::Rng(plan_.seed).Fork("interconnect-loss"));
      for (const TransferFaultWindow& window : plan_.transfer_faults) {
        const double p = window.failure_probability;
        sim_->ScheduleAt(window.from, [this, link, p] {
          ++events_fired_;
          ++transfer_edges_injected_;
          tracer_.Instant("fault", "transfer-window-begin", 0, p);
          link->SetFailureProbability(p);
        });
        sim_->ScheduleAt(window.to, [this, link] {
          ++events_fired_;
          ++transfer_edges_injected_;
          tracer_.Instant("fault", "transfer-window-end", 0);
          link->SetFailureProbability(0.0);
        });
        events_scheduled_ += 2;
      }
    }
  }
}

void FaultInjector::RegisterAudits(check::InvariantRegistry& registry) const {
  registry.Register(
      "FaultInjector", "plan-delivered", [this](check::AuditContext& ctx) {
        ctx.Check(events_fired_ == events_scheduled_,
                  "only " + std::to_string(events_fired_) + " of " +
                      std::to_string(events_scheduled_) +
                      " planned fault events fired before quiescence");
      });
}

}  // namespace muxwise::fault
