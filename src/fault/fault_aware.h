#ifndef MUXWISE_FAULT_FAULT_AWARE_H_
#define MUXWISE_FAULT_FAULT_AWARE_H_

#include <cstdint>
#include <vector>

#include "fault/recovery.h"
#include "serve/engine.h"
#include "serve/request.h"
#include "sim/logging.h"
#include "sim/simulator.h"
#include "workload/slo.h"

namespace muxwise::fault {

/**
 * Mixin base for engines that survive injected faults. It centralises
 * the bookkeeping every recovering engine needs — which domains are
 * down, the crash epoch that invalidates in-flight callbacks, degraded
 * outcome counters, deadline/shed/retry policy decisions — while
 * leaving the actual work reconstruction (what KV was lost, what to
 * re-enqueue where) to the engine, which is the only layer that knows.
 *
 * The epoch pattern: HostThread submissions and Interconnect transfers
 * cannot be cancelled, so a crash cannot revoke callbacks already in
 * flight. Instead every engine-layer callback captures `epoch()` at
 * submission and no-ops when the engine's epoch has moved on — the
 * simulated analogue of dropping completions from a device generation
 * that no longer exists. (tools/muxlint's dangling-callback rule flags
 * completion lambdas in fault-capable engines that skip this guard.)
 */
class FaultAwareEngine : public serve::Engine {
 public:
  const RecoveryPolicy& recovery() const { return recovery_; }

  /** Requests rejected at admission under overload/outage. */
  std::size_t shed_requests() const { return shed_requests_; }

  /** Requests abandoned past their SLO-derived deadline. */
  std::size_t timed_out_requests() const { return timed_out_requests_; }

  /** Requests that exhausted their crash-retry budget. */
  std::size_t failed_requests() const { return failed_requests_; }

  /** Crash-lost requests successfully re-enqueued. */
  std::size_t crash_requeues() const { return crash_requeues_; }

 protected:
  FaultAwareEngine(sim::Simulator* simulator, workload::SloTargets slo,
                   RecoveryPolicy policy)
      : fault_sim_(simulator), slo_(slo), recovery_(policy) {
    MUX_CHECK(fault_sim_ != nullptr);
  }

  bool FaultsEnabled() const { return recovery_.enabled; }

  bool DomainDown(std::size_t domain) const {
    return domain < down_.size() && down_[domain];
  }

  bool AnyDomainDown() const {
    for (bool down : down_) {
      if (down) return true;
    }
    return false;
  }

  void MarkDown(std::size_t domain, bool down) {
    if (domain >= down_.size()) down_.resize(domain + 1, false);
    down_[domain] = down;
  }

  /**
   * Callback-invalidation epoch. Bumped by every crash; lambdas compare
   * their captured value against this before touching engine state.
   */
  std::uint64_t epoch() const { return epoch_; }
  void BumpEpoch() { ++epoch_; }

  /** Absolute give-up time for `request` under this engine's policy. */
  sim::Time DeadlineFor(const serve::Request& request) const {
    return RequestDeadline(request.arrival, *request.spec, slo_, recovery_);
  }

  bool DeadlinePassed(const serve::Request& request) const {
    return recovery_.enabled && fault_sim_->Now() >= request.deadline;
  }

  /**
   * Stamps a degraded terminal outcome (kShed/kTimedOut/kFailed) and
   * bumps the matching counter. The caller still owns notification and
   * in-flight accounting.
   */
  void MarkTerminal(serve::Request& request, serve::Outcome outcome) {
    MUX_CHECK(serve::IsTerminalOutcome(outcome) &&
              outcome != serve::Outcome::kCompleted);
    request.outcome = outcome;
    request.phase = serve::Phase::kDone;
    request.completion = fault_sim_->Now();
    switch (outcome) {
      case serve::Outcome::kShed:
        ++shed_requests_;
        break;
      case serve::Outcome::kTimedOut:
        ++timed_out_requests_;
        break;
      default:
        ++failed_requests_;
        break;
    }
  }

  /** KV working-set tokens a request will eventually need (shed proxy). */
  static std::int64_t DemandTokens(const serve::Request& request) {
    return request.spec->input_tokens + request.spec->output_tokens;
  }

  /**
   * Admission-control decision: shed when the queued KV demand
   * (including the candidate) exceeds the policy factor of capacity.
   */
  bool ShedNow(std::int64_t queued_demand, std::int64_t capacity) const {
    return recovery_.enabled &&
           static_cast<double>(queued_demand) >
               recovery_.shed_demand_factor * static_cast<double>(capacity);
  }

  /**
   * Resets a crash-lost request for re-enqueue: phase back to queued,
   * prefill progress and pool bookkeeping zeroed (its KV is gone), but
   * `generated`/`token_times` kept — tokens already streamed to the
   * client are durable, so recovery recomputes the lost KV over
   * input + generated and resumes decode, preserving the original TTFT.
   * Returns false when the retry budget is spent; the caller marks the
   * request kFailed instead.
   */
  bool PrepareRetry(serve::Request& request) {
    ++request.crash_retries;
    if (request.crash_retries > recovery_.max_crash_retries) return false;
    ++crash_requeues_;
    request.outcome = serve::Outcome::kRetrying;
    request.phase = serve::Phase::kQueued;
    request.progress = 0;
    request.cached_tokens = 0;
    request.prefill_tokens = 0;
    request.reserved_tokens = 0;
    return true;
  }

  sim::Simulator* fault_sim_;

 private:
  workload::SloTargets slo_;
  RecoveryPolicy recovery_;
  std::vector<bool> down_;
  std::uint64_t epoch_ = 0;
  std::size_t shed_requests_ = 0;
  std::size_t timed_out_requests_ = 0;
  std::size_t failed_requests_ = 0;
  std::size_t crash_requeues_ = 0;
};

}  // namespace muxwise::fault

#endif  // MUXWISE_FAULT_FAULT_AWARE_H_
