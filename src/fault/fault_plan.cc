#include "fault/fault_plan.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "sim/logging.h"

namespace muxwise::fault {

namespace {

/**
 * First overlap among [from, to) windows sharing one target, or empty.
 * Shared by every windowed fault kind: two overlapping windows on one
 * target would interleave their begin/end edges, leaving the target in
 * whichever state the last edge happened to set — a "valid" plan whose
 * effect is not the one it declares.
 */
std::string CheckWindowOverlap(const char* kind,
                               const std::string& target,
                               std::vector<std::pair<sim::Time, sim::Time>>
                                   windows) {
  std::sort(windows.begin(), windows.end());
  for (std::size_t i = 1; i < windows.size(); ++i) {
    if (windows[i].first < windows[i - 1].second) {
      return "fault plan: overlapping " + std::string(kind) +
             " windows on " + target + " ([" +
             std::to_string(windows[i - 1].first) + ", " +
             std::to_string(windows[i - 1].second) + ") and [" +
             std::to_string(windows[i].first) + ", " +
             std::to_string(windows[i].second) + "))";
    }
  }
  return "";
}

std::string InstanceLabel(std::size_t instance) {
  return "instance " + std::to_string(instance);
}

}  // namespace

FaultPlan& FaultPlan::Crash(std::size_t instance, sim::Time at,
                            sim::Time recover_at) {
  crashes.push_back({instance, at, recover_at});
  return *this;
}

FaultPlan& FaultPlan::Straggle(std::size_t instance, sim::Time from,
                               sim::Time to, double slowdown) {
  stragglers.push_back({instance, from, to, slowdown});
  return *this;
}

FaultPlan& FaultPlan::DropTransfers(sim::Time from, sim::Time to, double p) {
  transfer_faults.push_back({from, to, p});
  return *this;
}

FaultPlan& FaultPlan::Zombie(std::size_t instance, sim::Time from,
                             sim::Time to) {
  zombies.push_back({instance, from, to});
  return *this;
}

FaultPlan& FaultPlan::Flap(std::size_t instance, sim::Time from, sim::Time to,
                           sim::Duration period, double duty_up) {
  flaps.push_back({instance, false, from, to, period, duty_up});
  return *this;
}

FaultPlan& FaultPlan::FlapLink(sim::Time from, sim::Time to,
                               sim::Duration period, double duty_up) {
  flaps.push_back({0, true, from, to, period, duty_up});
  return *this;
}

FaultPlan& FaultPlan::Degrade(std::size_t instance, sim::Time from,
                              sim::Time to, double flops_factor,
                              double bandwidth_factor) {
  degrades.push_back(
      {instance, false, from, to, flops_factor, bandwidth_factor});
  return *this;
}

FaultPlan& FaultPlan::DegradeLink(sim::Time from, sim::Time to,
                                  double bandwidth_factor) {
  degrades.push_back({0, true, from, to, 1.0, bandwidth_factor});
  return *this;
}

FaultPlan& FaultPlan::Partition(std::size_t instance, sim::Time from,
                                sim::Time to, bool drop_to_replica,
                                bool drop_from_replica) {
  partitions.push_back(
      {instance, from, to, drop_to_replica, drop_from_replica});
  return *this;
}

std::string FaultPlan::Check() const {
  for (const CrashEvent& crash : crashes) {
    if (crash.at < 0) return "fault plan: crash before t=0";
    if (crash.recover_at <= crash.at) {
      return "fault plan: crash at t=" + std::to_string(crash.at) +
             " recovers at t=" + std::to_string(crash.recover_at) +
             " (must be strictly later, or kTimeNever)";
    }
  }
  // Cross-entry ordering per instance: crash windows must not overlap.
  // Without this check a plan whose second crash fires inside (or
  // before) an earlier crash's window interleaves crash/recover events
  // in an order the plan never intended — e.g. an instance silently
  // resurrected by a stale recovery, or left down forever because its
  // recovery landed before a later crash — and the run is "valid" but
  // meaningless.
  std::map<std::size_t, std::vector<const CrashEvent*>> by_instance;
  for (const CrashEvent& crash : crashes) {
    by_instance[crash.instance].push_back(&crash);
  }
  for (auto& [instance, events] : by_instance) {
    std::sort(events.begin(), events.end(),
              [](const CrashEvent* a, const CrashEvent* b) {
                return a->at < b->at;
              });
    for (std::size_t i = 1; i < events.size(); ++i) {
      const CrashEvent& prev = *events[i - 1];
      const CrashEvent& next = *events[i];
      if (prev.recover_at == sim::kTimeNever) {
        return "fault plan: instance " + std::to_string(instance) +
               " crashes at t=" + std::to_string(next.at) +
               " after never recovering from its crash at t=" +
               std::to_string(prev.at);
      }
      if (next.at < prev.recover_at) {
        return "fault plan: instance " + std::to_string(instance) +
               " crashes again at t=" + std::to_string(next.at) +
               " before recovering at t=" + std::to_string(prev.recover_at) +
               " (overlapping crash windows)";
      }
    }
  }
  for (const StragglerWindow& window : stragglers) {
    if (window.from < 0 || window.to <= window.from) {
      return "fault plan: inverted straggler window [" +
             std::to_string(window.from) + ", " + std::to_string(window.to) +
             ")";
    }
    if (window.slowdown < 1.0) {
      return "fault plan: straggler slowdown " +
             std::to_string(window.slowdown) + " < 1";
    }
  }
  for (const TransferFaultWindow& window : transfer_faults) {
    if (window.from < 0 || window.to <= window.from) {
      return "fault plan: inverted transfer-fault window [" +
             std::to_string(window.from) + ", " + std::to_string(window.to) +
             ")";
    }
    if (window.failure_probability < 0.0 ||
        window.failure_probability >= 1.0) {
      return "fault plan: transfer failure probability " +
             std::to_string(window.failure_probability) + " outside [0, 1)";
    }
  }

  // --- Grey-failure kinds -------------------------------------------

  std::map<std::size_t, std::vector<std::pair<sim::Time, sim::Time>>>
      zombie_windows;
  for (const ZombieWindow& window : zombies) {
    if (window.from < 0 || window.to <= window.from) {
      return "fault plan: inverted zombie window [" +
             std::to_string(window.from) + ", " + std::to_string(window.to) +
             ")";
    }
    if (window.to == sim::kTimeNever) {
      return "fault plan: zombie window on instance " +
             std::to_string(window.instance) +
             " never ends (a frozen device would strand its work forever)";
    }
    zombie_windows[window.instance].emplace_back(window.from, window.to);
  }
  for (auto& [instance, windows] : zombie_windows) {
    if (std::string err = CheckWindowOverlap("zombie", InstanceLabel(instance),
                                             std::move(windows));
        !err.empty()) {
      return err;
    }
  }

  std::map<std::pair<bool, std::size_t>,
           std::vector<std::pair<sim::Time, sim::Time>>>
      flap_windows;
  for (const FlapWindow& window : flaps) {
    if (window.from < 0 || window.to <= window.from) {
      return "fault plan: inverted flap window [" +
             std::to_string(window.from) + ", " + std::to_string(window.to) +
             ")";
    }
    if (window.to == sim::kTimeNever) {
      return "fault plan: flap window never ends";
    }
    if (window.period <= 0) {
      return "fault plan: flap period " + std::to_string(window.period) +
             " must be > 0";
    }
    if (window.duty_up <= 0.0 || window.duty_up >= 1.0) {
      return "fault plan: flap duty cycle " + std::to_string(window.duty_up) +
             " outside (0, 1)";
    }
    flap_windows[{window.link, window.link ? 0 : window.instance}]
        .emplace_back(window.from, window.to);
  }
  for (auto& [target, windows] : flap_windows) {
    const std::string label =
        target.first ? "the link" : InstanceLabel(target.second);
    if (std::string err =
            CheckWindowOverlap("flap", label, std::move(windows));
        !err.empty()) {
      return err;
    }
  }

  std::map<std::pair<bool, std::size_t>,
           std::vector<std::pair<sim::Time, sim::Time>>>
      degrade_windows;
  for (const DegradeWindow& window : degrades) {
    if (window.from < 0 || window.to <= window.from) {
      return "fault plan: inverted degrade window [" +
             std::to_string(window.from) + ", " + std::to_string(window.to) +
             ")";
    }
    if (window.flops_factor <= 0.0 || window.flops_factor > 1.0 ||
        window.bandwidth_factor <= 0.0 || window.bandwidth_factor > 1.0) {
      return "fault plan: degrade factors (" +
             std::to_string(window.flops_factor) + ", " +
             std::to_string(window.bandwidth_factor) + ") outside (0, 1]";
    }
    if (window.link && window.flops_factor != 1.0) {
      return "fault plan: link degrade carries flops_factor " +
             std::to_string(window.flops_factor) +
             " (a wire has no FLOPs; must be 1)";
    }
    degrade_windows[{window.link, window.link ? 0 : window.instance}]
        .emplace_back(window.from, window.to);
  }
  for (auto& [target, windows] : degrade_windows) {
    const std::string label =
        target.first ? "the link" : InstanceLabel(target.second);
    if (std::string err =
            CheckWindowOverlap("degrade", label, std::move(windows));
        !err.empty()) {
      return err;
    }
  }

  std::map<std::size_t, std::vector<std::pair<sim::Time, sim::Time>>>
      partition_windows;
  for (const PartitionWindow& window : partitions) {
    if (window.from < 0 || window.to <= window.from) {
      return "fault plan: inverted partition window [" +
             std::to_string(window.from) + ", " + std::to_string(window.to) +
             ")";
    }
    if (window.to == sim::kTimeNever) {
      return "fault plan: partition window never ends";
    }
    if (window.drop_to_replica && window.drop_from_replica) {
      return "fault plan: partition on instance " +
             std::to_string(window.instance) +
             " drops both directions (indistinguishable from a crash; "
             "use Crash)";
    }
    if (!window.drop_to_replica && !window.drop_from_replica) {
      return "fault plan: partition on instance " +
             std::to_string(window.instance) +
             " drops neither direction (a no-op)";
    }
    partition_windows[window.instance].emplace_back(window.from, window.to);
  }
  for (auto& [instance, windows] : partition_windows) {
    if (std::string err = CheckWindowOverlap(
            "partition", InstanceLabel(instance), std::move(windows));
        !err.empty()) {
      return err;
    }
  }

  return "";
}

void FaultPlan::Validate() const {
  const std::string error = Check();
  if (!error.empty()) sim::Fatal(error);
}

std::string FaultPlan::Describe() const {
  if (Empty()) return "fault plan: (empty)\n";
  std::ostringstream out;
  out << "fault plan (seed " << seed << "):\n";
  for (const CrashEvent& crash : crashes) {
    out << "  crash instance " << crash.instance << " at "
        << sim::FormatDuration(crash.at);
    if (crash.recover_at == sim::kTimeNever) {
      out << ", never recovers\n";
    } else {
      out << ", recovers at " << sim::FormatDuration(crash.recover_at) << "\n";
    }
  }
  for (const StragglerWindow& window : stragglers) {
    out << "  straggler instance " << window.instance << " x"
        << window.slowdown << " during [" << sim::FormatDuration(window.from)
        << ", " << sim::FormatDuration(window.to) << ")\n";
  }
  for (const TransferFaultWindow& window : transfer_faults) {
    out << "  transfer loss p=" << window.failure_probability << " during ["
        << sim::FormatDuration(window.from) << ", "
        << sim::FormatDuration(window.to) << ")\n";
  }
  for (const ZombieWindow& window : zombies) {
    out << "  zombie instance " << window.instance << " during ["
        << sim::FormatDuration(window.from) << ", "
        << sim::FormatDuration(window.to) << ")\n";
  }
  for (const FlapWindow& window : flaps) {
    out << "  flap " << (window.link ? "link" : "instance ")
        << (window.link ? "" : std::to_string(window.instance)) << " period "
        << sim::FormatDuration(window.period) << " duty " << window.duty_up
        << " during [" << sim::FormatDuration(window.from) << ", "
        << sim::FormatDuration(window.to) << ")\n";
  }
  for (const DegradeWindow& window : degrades) {
    out << "  degrade " << (window.link ? "link" : "instance ")
        << (window.link ? "" : std::to_string(window.instance)) << " flops x"
        << window.flops_factor << " bandwidth x" << window.bandwidth_factor
        << " during [" << sim::FormatDuration(window.from) << ", "
        << sim::FormatDuration(window.to) << ")\n";
  }
  for (const PartitionWindow& window : partitions) {
    out << "  partition instance " << window.instance << " drops "
        << (window.drop_from_replica ? "replica->router" : "router->replica")
        << " during [" << sim::FormatDuration(window.from) << ", "
        << sim::FormatDuration(window.to) << ")\n";
  }
  return out.str();
}

}  // namespace muxwise::fault
