#include "fault/fault_plan.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "sim/logging.h"

namespace muxwise::fault {

FaultPlan& FaultPlan::Crash(std::size_t instance, sim::Time at,
                            sim::Time recover_at) {
  crashes.push_back({instance, at, recover_at});
  return *this;
}

FaultPlan& FaultPlan::Straggle(std::size_t instance, sim::Time from,
                               sim::Time to, double slowdown) {
  stragglers.push_back({instance, from, to, slowdown});
  return *this;
}

FaultPlan& FaultPlan::DropTransfers(sim::Time from, sim::Time to, double p) {
  transfer_faults.push_back({from, to, p});
  return *this;
}

void FaultPlan::Validate() const {
  for (const CrashEvent& crash : crashes) {
    if (crash.at < 0) sim::Fatal("fault plan: crash before t=0");
    if (crash.recover_at <= crash.at) {
      sim::Fatal("fault plan: crash at t=" + std::to_string(crash.at) +
                 " recovers at t=" + std::to_string(crash.recover_at) +
                 " (must be strictly later, or kTimeNever)");
    }
  }
  // Cross-entry ordering per instance: crash windows must not overlap.
  // Without this check a plan whose second crash fires inside (or
  // before) an earlier crash's window interleaves crash/recover events
  // in an order the plan never intended — e.g. an instance silently
  // resurrected by a stale recovery, or left down forever because its
  // recovery landed before a later crash — and the run is "valid" but
  // meaningless.
  std::map<std::size_t, std::vector<const CrashEvent*>> by_instance;
  for (const CrashEvent& crash : crashes) {
    by_instance[crash.instance].push_back(&crash);
  }
  for (auto& [instance, events] : by_instance) {
    std::sort(events.begin(), events.end(),
              [](const CrashEvent* a, const CrashEvent* b) {
                return a->at < b->at;
              });
    for (std::size_t i = 1; i < events.size(); ++i) {
      const CrashEvent& prev = *events[i - 1];
      const CrashEvent& next = *events[i];
      if (prev.recover_at == sim::kTimeNever) {
        sim::Fatal("fault plan: instance " + std::to_string(instance) +
                   " crashes at t=" + std::to_string(next.at) +
                   " after never recovering from its crash at t=" +
                   std::to_string(prev.at));
      }
      if (next.at < prev.recover_at) {
        sim::Fatal("fault plan: instance " + std::to_string(instance) +
                   " crashes again at t=" + std::to_string(next.at) +
                   " before recovering at t=" +
                   std::to_string(prev.recover_at) +
                   " (overlapping crash windows)");
      }
    }
  }
  for (const StragglerWindow& window : stragglers) {
    if (window.from < 0 || window.to <= window.from) {
      sim::Fatal("fault plan: inverted straggler window [" +
                 std::to_string(window.from) + ", " +
                 std::to_string(window.to) + ")");
    }
    if (window.slowdown < 1.0) {
      sim::Fatal("fault plan: straggler slowdown " +
                 std::to_string(window.slowdown) + " < 1");
    }
  }
  for (const TransferFaultWindow& window : transfer_faults) {
    if (window.from < 0 || window.to <= window.from) {
      sim::Fatal("fault plan: inverted transfer-fault window [" +
                 std::to_string(window.from) + ", " +
                 std::to_string(window.to) + ")");
    }
    if (window.failure_probability < 0.0 ||
        window.failure_probability >= 1.0) {
      sim::Fatal("fault plan: transfer failure probability " +
                 std::to_string(window.failure_probability) +
                 " outside [0, 1)");
    }
  }
}

std::string FaultPlan::Describe() const {
  if (Empty()) return "fault plan: (empty)\n";
  std::ostringstream out;
  out << "fault plan (seed " << seed << "):\n";
  for (const CrashEvent& crash : crashes) {
    out << "  crash instance " << crash.instance << " at "
        << sim::FormatDuration(crash.at);
    if (crash.recover_at == sim::kTimeNever) {
      out << ", never recovers\n";
    } else {
      out << ", recovers at " << sim::FormatDuration(crash.recover_at) << "\n";
    }
  }
  for (const StragglerWindow& window : stragglers) {
    out << "  straggler instance " << window.instance << " x"
        << window.slowdown << " during [" << sim::FormatDuration(window.from)
        << ", " << sim::FormatDuration(window.to) << ")\n";
  }
  for (const TransferFaultWindow& window : transfer_faults) {
    out << "  transfer loss p=" << window.failure_probability << " during ["
        << sim::FormatDuration(window.from) << ", "
        << sim::FormatDuration(window.to) << ")\n";
  }
  return out.str();
}

}  // namespace muxwise::fault
