#ifndef MUXWISE_KV_TOKEN_SEQ_H_
#define MUXWISE_KV_TOKEN_SEQ_H_

#include <cstdint>
#include <vector>

namespace muxwise::kv {

/**
 * A contiguous run of tokens inside a deterministic token stream.
 *
 * The simulator never materializes token ids. Instead, every logical
 * token belongs to a `stream` (one per conversation session, plus one
 * per shared system prompt), and position `i` of a stream always denotes
 * the same token. Two spans therefore share content exactly when they
 * reference the same stream at the same offset — which is all a radix
 * tree needs for prefix matching, at O(1) memory per request instead of
 * O(context length).
 */
struct TokenSpan {
  std::int64_t stream = 0;
  std::int64_t begin = 0;
  std::int64_t end = 0;  // Exclusive.

  std::int64_t length() const { return end - begin; }

  friend bool operator==(const TokenSpan&, const TokenSpan&) = default;
};

/** A token sequence: concatenation of spans (normalized, no empties). */
using TokenSeq = std::vector<TokenSpan>;

/** Total tokens in a sequence. */
std::int64_t SeqLength(const TokenSeq& seq);

/** Appends a span, merging with the tail when contiguous. */
void AppendSpan(TokenSeq& seq, TokenSpan span);

/** Returns the first `len` tokens of `seq` as a new sequence. */
TokenSeq SeqPrefix(const TokenSeq& seq, std::int64_t len);

/** Returns tokens [from, end) of `seq` as a new sequence. */
TokenSeq SeqSuffix(const TokenSeq& seq, std::int64_t from);

/** Length of the longest common prefix of two sequences, in tokens. */
std::int64_t CommonPrefixLength(const TokenSeq& a, const TokenSeq& b);

}  // namespace muxwise::kv

#endif  // MUXWISE_KV_TOKEN_SEQ_H_
