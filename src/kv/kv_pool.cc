#include "kv/kv_pool.h"

#include <algorithm>
#include <utility>

#include "sim/logging.h"

namespace muxwise::kv {

KvPool::KvPool(std::int64_t capacity_tokens) : capacity_(capacity_tokens) {
  MUX_CHECK(capacity_ > 0);
}

KvPool::PrefixLease KvPool::AcquirePrefix(const TokenSeq& seq,
                                          sim::Time now) {
  PrefixLease lease;
  RadixTree::MatchResult match = tree_.MatchAndLock(seq, now);
  lease.lock = match.lock;
  lease.matched_tokens = match.matched_tokens;
  ++lookups_;
  requested_tokens_ += SeqLength(seq);
  hit_tokens_ += match.matched_tokens;
  return lease;
}

void KvPool::ReleasePrefix(PrefixLease& lease) {
  if (lease.lock.node == nullptr) return;
  tree_.Unlock(lease.lock);
  lease.lock.node = nullptr;
  lease.matched_tokens = 0;
}

bool KvPool::TryReserve(std::int64_t tokens) {
  MUX_CHECK(tokens >= 0);
  if (tokens == 0) return true;
  if (free_tokens() < tokens) {
    tree_.EvictLru(tokens - free_tokens());
  }
  if (free_tokens() < tokens) {
    TraceOccupancy();  // Evictions may still have changed the cache.
    return false;
  }
  reserved_ += tokens;
  TraceOccupancy();
  return true;
}

void KvPool::ReleaseReserved(std::int64_t tokens) {
  MUX_CHECK(tokens >= 0);
  MUX_CHECK(tokens <= reserved_);
  reserved_ -= tokens;
  TraceOccupancy();
}

void KvPool::CommitSequence(const TokenSeq& seq, sim::Time now) {
  auto [added, lock] = tree_.InsertAndLock(seq, now);
  tree_.Unlock(lock);
  (void)added;
  if (used_tokens() > capacity_) {
    tree_.EvictLru(used_tokens() - capacity_);
  }
  if (used_tokens() > capacity_) {
    // Everything is pinned by in-flight requests; engines admit within
    // capacity so this indicates transient pressure, not corruption.
    MUX_LOG_DEBUG << "KvPool transiently over capacity: "
                  << used_tokens() << " > " << capacity_;
  }
  TraceOccupancy();
}

void KvPool::Clear() {
  MUX_CHECK(tree_.LockedTokens() == 0);
  tree_.EvictLru(tree_.total_tokens());
  TraceOccupancy();
}

void KvPool::SpillReserved(std::int64_t tokens) {
  MUX_CHECK(tokens >= 0);
  MUX_CHECK(tokens <= reserved_);
  reserved_ -= tokens;
  spilled_ += tokens;
  spilled_in_total_ += tokens;
  TraceOccupancy();
}

bool KvPool::TryRestoreSpilled(std::int64_t tokens) {
  MUX_CHECK(tokens >= 0);
  MUX_CHECK(tokens <= spilled_);
  if (tokens == 0) return true;
  if (free_tokens() < tokens) {
    tree_.EvictLru(tokens - free_tokens());
  }
  if (free_tokens() < tokens) {
    TraceOccupancy();  // Evictions may still have changed the cache.
    return false;
  }
  spilled_ -= tokens;
  restored_total_ += tokens;
  reserved_ += tokens;
  TraceOccupancy();
  return true;
}

void KvPool::DropSpilled(std::int64_t tokens) {
  MUX_CHECK(tokens >= 0);
  MUX_CHECK(tokens <= spilled_);
  spilled_ -= tokens;
  dropped_spill_total_ += tokens;
  TraceOccupancy();
}

void KvPool::set_tracer(obs::Tracer tracer, std::string track) {
  tracer_ = tracer;
  track_ = std::move(track);
  TraceOccupancy();  // Establish the initial (usually empty) level.
}

void KvPool::TraceOccupancy() const {
  if (!tracer_.enabled()) return;
  tracer_.Counter(track_, "used-tokens",
                  static_cast<double>(used_tokens()));
  tracer_.Counter(track_, "cached-tokens",
                  static_cast<double>(cached_tokens()));
  tracer_.Counter(track_, "reserved-tokens",
                  static_cast<double>(reserved_));
  if (spilled_in_total_ > 0) {
    tracer_.Counter(track_, "spilled-tokens",
                    static_cast<double>(spilled_));
  }
}

void KvPool::RegisterAudits(check::InvariantRegistry& registry) const {
  registry.Register(
      "KvPool", "token-conservation", [this](check::AuditContext& ctx) {
        ctx.Check(reserved_ >= 0,
                  "negative reserved " + std::to_string(reserved_));
        ctx.Check(cached_tokens() >= 0,
                  "negative cached " + std::to_string(cached_tokens()));
        ctx.Check(used_tokens() == cached_tokens() + reserved_,
                  "used != cached + reserved");
        ctx.Check(used_tokens() <= capacity_,
                  "used " + std::to_string(used_tokens()) +
                      " exceeds capacity " + std::to_string(capacity_) +
                      " at quiescence");
        ctx.Check(hit_tokens_ <= requested_tokens_,
                  "hit tokens exceed requested tokens");
      });
  registry.Register(
      "KvPool", "quiescent-working-set", [this](check::AuditContext& ctx) {
        // At scenario end every in-flight request has finished, so its
        // reservation and prefix pin must have been returned.
        ctx.Check(reserved_ == 0,
                  "leaked working-set reservation of " +
                      std::to_string(reserved_) + " tokens");
        ctx.Check(tree_.LockedTokens() == 0,
                  "leaked prefix pin on " +
                      std::to_string(tree_.LockedTokens()) + " tokens");
      });
  registry.Register(
      "KvPool", "spill-ledger", [this](check::AuditContext& ctx) {
        // Spilled pages leave HBM, so the resident conservation law
        // (used == cached + reserved <= capacity) is checked above
        // unchanged; the ledger itself must conserve flow and drain.
        ctx.Check(spilled_ >= 0,
                  "negative spill ledger " + std::to_string(spilled_));
        ctx.Check(spilled_in_total_ ==
                      spilled_ + restored_total_ + dropped_spill_total_,
                  "spill ledger flow leak: in=" +
                      std::to_string(spilled_in_total_) + " held=" +
                      std::to_string(spilled_) + " restored=" +
                      std::to_string(restored_total_) + " dropped=" +
                      std::to_string(dropped_spill_total_));
        ctx.Check(spilled_ == 0,
                  "spill ledger holds " + std::to_string(spilled_) +
                      " tokens at quiescence");
      });
  registry.Register("KvPool", "radix-refcounts",
                    [this](check::AuditContext& ctx) { tree_.Audit(ctx); });
}

double KvPool::HitRate() const {
  if (requested_tokens_ == 0) return 0.0;
  return static_cast<double>(hit_tokens_) /
         static_cast<double>(requested_tokens_);
}

}  // namespace muxwise::kv
