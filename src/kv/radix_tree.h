#ifndef MUXWISE_KV_RADIX_TREE_H_
#define MUXWISE_KV_RADIX_TREE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "check/invariant_registry.h"
#include "kv/token_seq.h"
#include "sim/time.h"

namespace muxwise::kv {

/**
 * SGLang-style radix tree over cached token sequences.
 *
 * Each node owns a compressed edge (a TokenSeq) whose tokens occupy KV
 * pool space. Nodes carry reference counts: a request pins (locks) the
 * path covering the prefix it reuses so that eviction cannot free cache
 * under an in-flight computation. Unreferenced leaves are evicted in
 * LRU order (paper Fig. 5 uses exactly this policy).
 */
class RadixTree {
 public:
  struct Node;

  /** Pin on a matched path. Release with Unlock(). */
  struct Lock {
    Node* node = nullptr;
  };

  struct MatchResult {
    std::int64_t matched_tokens = 0;
    Lock lock;  // Valid only when requested via MatchAndLock.
  };

  RadixTree();
  ~RadixTree();

  RadixTree(const RadixTree&) = delete;
  RadixTree& operator=(const RadixTree&) = delete;

  /** Longest cached prefix of `seq`, updating recency. Does not pin. */
  std::int64_t MatchedPrefix(const TokenSeq& seq, sim::Time now);

  /** Longest cached prefix of `seq`; pins the matched path. */
  MatchResult MatchAndLock(const TokenSeq& seq, sim::Time now);

  /** Releases a pin obtained from MatchAndLock or InsertAndLock. */
  void Unlock(Lock lock);

  /**
   * Ensures `seq` is fully present, splitting/creating nodes as needed.
   * Returns the number of tokens newly materialized (pool growth) and a
   * pin on the deepest node of the inserted path.
   */
  std::pair<std::int64_t, Lock> InsertAndLock(const TokenSeq& seq,
                                              sim::Time now);

  /**
   * Evicts unreferenced leaves, LRU first, until at least
   * `tokens_needed` tokens are freed or nothing evictable remains.
   * Returns tokens actually freed.
   */
  std::int64_t EvictLru(std::int64_t tokens_needed);

  /** Tokens currently cached (sum of all edge lengths). */
  std::int64_t total_tokens() const { return total_tokens_; }

  /** Tokens pinned by outstanding locks (not evictable). */
  std::int64_t LockedTokens() const;

  /** Number of nodes (diagnostic). */
  std::size_t node_count() const { return node_count_; }

  /** Internal consistency check used by tests; aborts on violation. */
  void CheckInvariants() const;

  /**
   * Non-aborting variant of CheckInvariants for the invariant-audit
   * registry: records every broken structural invariant (negative
   * refcounts, token/node miscounts, orphaned parent links) on `ctx`.
   */
  void Audit(check::AuditContext& ctx) const;

 private:
  using ChildKey = std::pair<std::int64_t, std::int64_t>;  // (stream, begin).

  static ChildKey KeyFor(const TokenSeq& seq);

  /**
   * Splits `node`'s edge at `offset` tokens, inserting a new parent that
   * owns the top part. Locks on `node` keep pinning the whole path.
   */
  Node* SplitNode(Node* node, std::int64_t offset);

  /**
   * Re-derives `node`'s membership in the evictable-leaf index after any
   * mutation of its children, ref_count or last_access. Must be called
   * at every such mutation so EvictLru never has to rescan the tree.
   */
  void Reindex(Node* node);

  std::unique_ptr<Node> root_;
  std::int64_t total_tokens_ = 0;
  std::size_t node_count_ = 0;  // Excludes the root sentinel.

  // Persistent LRU index of evictable leaves (childless, unpinned),
  // ordered exactly like the historical per-call eviction heap:
  // (last_access, node address) ascending. Keeping it incrementally
  // up-to-date makes EvictLru O(victims * log n) instead of an O(n)
  // full-tree scan per call, which dominated million-request runs once
  // the pool filled.
  std::set<std::pair<sim::Time, Node*>> evictable_;
};

struct RadixTree::Node {
  TokenSeq edge;
  Node* parent = nullptr;
  std::map<ChildKey, std::unique_ptr<Node>> children;
  std::int64_t ref_count = 0;
  sim::Time last_access = 0;
  // Key under which this node currently sits in RadixTree::evictable_
  // ({0, nullptr} when absent). Owned by Reindex().
  std::pair<sim::Time, Node*> evict_key{0, nullptr};

  std::int64_t EdgeTokens() const { return SeqLength(edge); }
};

}  // namespace muxwise::kv

#endif  // MUXWISE_KV_RADIX_TREE_H_
