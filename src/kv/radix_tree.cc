#include "kv/radix_tree.h"

#include <algorithm>

#include "sim/logging.h"

namespace muxwise::kv {

RadixTree::RadixTree() : root_(std::make_unique<Node>()) {}

RadixTree::~RadixTree() = default;

void RadixTree::Reindex(Node* node) {
  if (node == nullptr || node == root_.get()) return;
  const bool should_index =
      node->children.empty() && node->ref_count == 0;
  if (node->evict_key.second != nullptr) {
    if (should_index && node->evict_key.first == node->last_access) {
      return;  // Already indexed under the current key.
    }
    evictable_.erase(node->evict_key);
    node->evict_key = {0, nullptr};
  }
  if (should_index) {
    node->evict_key = {node->last_access, node};
    evictable_.insert(node->evict_key);
  }
}

RadixTree::ChildKey RadixTree::KeyFor(const TokenSeq& seq) {
  MUX_CHECK(!seq.empty());
  return {seq.front().stream, seq.front().begin};
}

std::int64_t RadixTree::MatchedPrefix(const TokenSeq& seq, sim::Time now) {
  Node* node = root_.get();
  TokenSeq remaining = seq;
  std::int64_t matched = 0;
  while (!remaining.empty()) {
    auto it = node->children.find(KeyFor(remaining));
    if (it == node->children.end()) break;
    Node* child = it->second.get();
    const std::int64_t common = CommonPrefixLength(child->edge, remaining);
    MUX_CHECK(common > 0);
    matched += common;
    child->last_access = now;
    Reindex(child);
    if (common < child->EdgeTokens()) break;
    remaining = SeqSuffix(remaining, common);
    node = child;
  }
  return matched;
}

RadixTree::MatchResult RadixTree::MatchAndLock(const TokenSeq& seq,
                                               sim::Time now) {
  Node* node = root_.get();
  TokenSeq remaining = seq;
  std::int64_t matched = 0;
  Node* deepest = nullptr;
  while (!remaining.empty()) {
    auto it = node->children.find(KeyFor(remaining));
    if (it == node->children.end()) break;
    Node* child = it->second.get();
    const std::int64_t common = CommonPrefixLength(child->edge, remaining);
    MUX_CHECK(common > 0);
    matched += common;
    child->last_access = now;
    ++child->ref_count;
    Reindex(child);
    deepest = child;
    if (common < child->EdgeTokens()) break;
    remaining = SeqSuffix(remaining, common);
    node = child;
  }
  MatchResult result;
  result.matched_tokens = matched;
  result.lock.node = deepest;
  return result;
}

void RadixTree::Unlock(Lock lock) {
  for (Node* node = lock.node; node != nullptr && node != root_.get();
       node = node->parent) {
    MUX_CHECK(node->ref_count > 0);
    --node->ref_count;
    Reindex(node);
  }
}

RadixTree::Node* RadixTree::SplitNode(Node* node, std::int64_t offset) {
  MUX_CHECK(offset > 0 && offset < node->EdgeTokens());
  Node* parent = node->parent;
  MUX_CHECK(parent != nullptr);

  auto top = std::make_unique<Node>();
  top->edge = SeqPrefix(node->edge, offset);
  top->parent = parent;
  top->ref_count = node->ref_count;  // Pins through `node` pin the path.
  top->last_access = node->last_access;

  const ChildKey node_key = KeyFor(node->edge);
  auto it = parent->children.find(node_key);
  MUX_CHECK(it != parent->children.end());
  std::unique_ptr<Node> owned = std::move(it->second);
  parent->children.erase(it);

  owned->edge = SeqSuffix(owned->edge, offset);
  owned->parent = top.get();
  const ChildKey bottom_key = KeyFor(owned->edge);
  Node* top_raw = top.get();
  top->children.emplace(bottom_key, std::move(owned));
  parent->children.emplace(KeyFor(top_raw->edge), std::move(top));
  ++node_count_;
  return top_raw;
}

std::pair<std::int64_t, RadixTree::Lock> RadixTree::InsertAndLock(
    const TokenSeq& seq, sim::Time now) {
  Node* node = root_.get();
  TokenSeq remaining = seq;
  std::int64_t added = 0;
  Node* deepest = nullptr;
  while (!remaining.empty()) {
    auto it = node->children.find(KeyFor(remaining));
    if (it == node->children.end()) {
      auto leaf = std::make_unique<Node>();
      leaf->edge = remaining;
      leaf->parent = node;
      leaf->last_access = now;
      leaf->ref_count = 1;
      added += SeqLength(remaining);
      total_tokens_ += SeqLength(remaining);
      Node* leaf_raw = leaf.get();
      node->children.emplace(KeyFor(remaining), std::move(leaf));
      ++node_count_;
      Reindex(node);  // The parent stopped being an evictable leaf.
      deepest = leaf_raw;
      remaining.clear();
      break;
    }
    Node* child = it->second.get();
    const std::int64_t common = CommonPrefixLength(child->edge, remaining);
    MUX_CHECK(common > 0);
    if (common < child->EdgeTokens()) {
      // The new sequence diverges (or ends) inside this edge: split so
      // the shared top part becomes its own node.
      child = SplitNode(child, common);
    }
    child->last_access = now;
    ++child->ref_count;
    Reindex(child);
    deepest = child;
    remaining = SeqSuffix(remaining, common);
    node = child;
  }
  return {added, Lock{deepest}};
}

std::int64_t RadixTree::EvictLru(std::int64_t tokens_needed) {
  // Walk the persistent evictable-leaf index in (last_access, address)
  // order — the same victim order the historical per-call DFS + min-heap
  // produced, but without the O(n) rescan of the whole tree.
  std::int64_t freed = 0;
  while (freed < tokens_needed && !evictable_.empty()) {
    Node* victim = evictable_.begin()->second;
    MUX_CHECK(victim->children.empty() && victim->ref_count == 0);
    evictable_.erase(evictable_.begin());
    victim->evict_key = {0, nullptr};
    Node* parent = victim->parent;
    freed += victim->EdgeTokens();
    total_tokens_ -= victim->EdgeTokens();
    --node_count_;
    parent->children.erase(KeyFor(victim->edge));
    Reindex(parent);  // The parent may have become an evictable leaf.
  }
  return freed;
}

std::int64_t RadixTree::LockedTokens() const {
  std::int64_t locked = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const auto& [key, child] : node->children)
      stack.push_back(child.get());
    if (node != root_.get() && node->ref_count > 0)
      locked += node->EdgeTokens();
  }
  return locked;
}

void RadixTree::CheckInvariants() const {
  std::int64_t tokens = 0;
  std::size_t nodes = 0;
  std::size_t evictable_leaves = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node != root_.get()) {
      MUX_CHECK(!node->edge.empty());
      MUX_CHECK(node->ref_count >= 0);
      tokens += node->EdgeTokens();
      ++nodes;
      const bool should_index =
          node->children.empty() && node->ref_count == 0;
      if (should_index) ++evictable_leaves;
      MUX_CHECK(should_index ==
                (node->evict_key.second != nullptr));
      if (should_index) {
        MUX_CHECK(node->evict_key.first == node->last_access);
        MUX_CHECK(evictable_.count(node->evict_key) == 1);
      }
    }
    for (const auto& [key, child] : node->children) {
      MUX_CHECK(child->parent == node);
      MUX_CHECK(key == KeyFor(child->edge));
      // A child pinned by a lock implies the parent is pinned too,
      // because locks increment every node on the path.
      if (node != root_.get() && child->ref_count > 0) {
        MUX_CHECK(node->ref_count > 0);
      }
      stack.push_back(child.get());
    }
  }
  MUX_CHECK(tokens == total_tokens_);
  MUX_CHECK(nodes == node_count_);
  MUX_CHECK(evictable_leaves == evictable_.size());
}

void RadixTree::Audit(check::AuditContext& ctx) const {
  std::int64_t tokens = 0;
  std::size_t nodes = 0;
  std::size_t evictable_leaves = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node != root_.get()) {
      ctx.Check(!node->edge.empty(), "non-root node with empty edge");
      ctx.Check(node->ref_count >= 0,
                "negative ref_count " + std::to_string(node->ref_count));
      tokens += node->EdgeTokens();
      ++nodes;
      const bool should_index =
          node->children.empty() && node->ref_count == 0;
      if (should_index) ++evictable_leaves;
      ctx.Check(should_index == (node->evict_key.second != nullptr),
                "evictable-leaf index membership out of sync");
      if (should_index && node->evict_key.second != nullptr) {
        ctx.Check(node->evict_key.first == node->last_access,
                  "evictable-leaf index key is stale");
        ctx.Check(evictable_.count(node->evict_key) == 1,
                  "evictable leaf marked indexed but absent from index");
      }
    }
    for (const auto& [key, child] : node->children) {
      ctx.Check(child->parent == node, "child with stale parent link");
      ctx.Check(key == KeyFor(child->edge), "child keyed under wrong edge");
      if (node != root_.get() && child->ref_count > 0) {
        ctx.Check(node->ref_count > 0,
                  "pinned child under unpinned parent (locks must pin "
                  "whole paths)");
      }
      stack.push_back(child.get());
    }
  }
  ctx.Check(tokens == total_tokens_,
            "edge-token sum " + std::to_string(tokens) +
                " disagrees with total_tokens " +
                std::to_string(total_tokens_));
  ctx.Check(nodes == node_count_,
            "node scan " + std::to_string(nodes) +
                " disagrees with node_count " + std::to_string(node_count_));
  ctx.Check(evictable_leaves == evictable_.size(),
            "evictable-leaf scan " + std::to_string(evictable_leaves) +
                " disagrees with index size " +
                std::to_string(evictable_.size()));
}

}  // namespace muxwise::kv
