#include "kv/radix_tree.h"

#include <algorithm>
#include <queue>

#include "sim/logging.h"

namespace muxwise::kv {

RadixTree::RadixTree() : root_(std::make_unique<Node>()) {}

RadixTree::~RadixTree() = default;

RadixTree::ChildKey RadixTree::KeyFor(const TokenSeq& seq) {
  MUX_CHECK(!seq.empty());
  return {seq.front().stream, seq.front().begin};
}

std::int64_t RadixTree::MatchedPrefix(const TokenSeq& seq, sim::Time now) {
  Node* node = root_.get();
  TokenSeq remaining = seq;
  std::int64_t matched = 0;
  while (!remaining.empty()) {
    auto it = node->children.find(KeyFor(remaining));
    if (it == node->children.end()) break;
    Node* child = it->second.get();
    const std::int64_t common = CommonPrefixLength(child->edge, remaining);
    MUX_CHECK(common > 0);
    matched += common;
    child->last_access = now;
    if (common < child->EdgeTokens()) break;
    remaining = SeqSuffix(remaining, common);
    node = child;
  }
  return matched;
}

RadixTree::MatchResult RadixTree::MatchAndLock(const TokenSeq& seq,
                                               sim::Time now) {
  Node* node = root_.get();
  TokenSeq remaining = seq;
  std::int64_t matched = 0;
  Node* deepest = nullptr;
  while (!remaining.empty()) {
    auto it = node->children.find(KeyFor(remaining));
    if (it == node->children.end()) break;
    Node* child = it->second.get();
    const std::int64_t common = CommonPrefixLength(child->edge, remaining);
    MUX_CHECK(common > 0);
    matched += common;
    child->last_access = now;
    ++child->ref_count;
    deepest = child;
    if (common < child->EdgeTokens()) break;
    remaining = SeqSuffix(remaining, common);
    node = child;
  }
  MatchResult result;
  result.matched_tokens = matched;
  result.lock.node = deepest;
  return result;
}

void RadixTree::Unlock(Lock lock) {
  for (Node* node = lock.node; node != nullptr && node != root_.get();
       node = node->parent) {
    MUX_CHECK(node->ref_count > 0);
    --node->ref_count;
  }
}

RadixTree::Node* RadixTree::SplitNode(Node* node, std::int64_t offset) {
  MUX_CHECK(offset > 0 && offset < node->EdgeTokens());
  Node* parent = node->parent;
  MUX_CHECK(parent != nullptr);

  auto top = std::make_unique<Node>();
  top->edge = SeqPrefix(node->edge, offset);
  top->parent = parent;
  top->ref_count = node->ref_count;  // Pins through `node` pin the path.
  top->last_access = node->last_access;

  const ChildKey node_key = KeyFor(node->edge);
  auto it = parent->children.find(node_key);
  MUX_CHECK(it != parent->children.end());
  std::unique_ptr<Node> owned = std::move(it->second);
  parent->children.erase(it);

  owned->edge = SeqSuffix(owned->edge, offset);
  owned->parent = top.get();
  const ChildKey bottom_key = KeyFor(owned->edge);
  Node* top_raw = top.get();
  top->children.emplace(bottom_key, std::move(owned));
  parent->children.emplace(KeyFor(top_raw->edge), std::move(top));
  ++node_count_;
  return top_raw;
}

std::pair<std::int64_t, RadixTree::Lock> RadixTree::InsertAndLock(
    const TokenSeq& seq, sim::Time now) {
  Node* node = root_.get();
  TokenSeq remaining = seq;
  std::int64_t added = 0;
  Node* deepest = nullptr;
  while (!remaining.empty()) {
    auto it = node->children.find(KeyFor(remaining));
    if (it == node->children.end()) {
      auto leaf = std::make_unique<Node>();
      leaf->edge = remaining;
      leaf->parent = node;
      leaf->last_access = now;
      leaf->ref_count = 1;
      added += SeqLength(remaining);
      total_tokens_ += SeqLength(remaining);
      Node* leaf_raw = leaf.get();
      node->children.emplace(KeyFor(remaining), std::move(leaf));
      ++node_count_;
      deepest = leaf_raw;
      remaining.clear();
      break;
    }
    Node* child = it->second.get();
    const std::int64_t common = CommonPrefixLength(child->edge, remaining);
    MUX_CHECK(common > 0);
    if (common < child->EdgeTokens()) {
      // The new sequence diverges (or ends) inside this edge: split so
      // the shared top part becomes its own node.
      child = SplitNode(child, common);
    }
    child->last_access = now;
    ++child->ref_count;
    deepest = child;
    remaining = SeqSuffix(remaining, common);
    node = child;
  }
  return {added, Lock{deepest}};
}

std::int64_t RadixTree::EvictLru(std::int64_t tokens_needed) {
  // Min-heap of evictable leaves ordered by last access.
  struct HeapEntry {
    sim::Time last_access;
    Node* node;
    bool operator>(const HeapEntry& other) const {
      if (last_access != other.last_access)
        return last_access > other.last_access;
      return node > other.node;
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap;
  // DFS to seed the heap with current evictable leaves.
  std::vector<Node*> stack = {root_.get()};
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    for (auto& [key, child] : node->children) stack.push_back(child.get());
    if (node != root_.get() && node->children.empty() &&
        node->ref_count == 0) {
      heap.push({node->last_access, node});
    }
  }

  std::int64_t freed = 0;
  while (freed < tokens_needed && !heap.empty()) {
    Node* victim = heap.top().node;
    heap.pop();
    // The victim may have gained children/refs meanwhile — impossible in
    // this single loop, but stay defensive.
    if (!victim->children.empty() || victim->ref_count != 0) continue;
    Node* parent = victim->parent;
    freed += victim->EdgeTokens();
    total_tokens_ -= victim->EdgeTokens();
    --node_count_;
    parent->children.erase(KeyFor(victim->edge));
    if (parent != root_.get() && parent->children.empty() &&
        parent->ref_count == 0) {
      heap.push({parent->last_access, parent});
    }
  }
  return freed;
}

std::int64_t RadixTree::LockedTokens() const {
  std::int64_t locked = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const auto& [key, child] : node->children)
      stack.push_back(child.get());
    if (node != root_.get() && node->ref_count > 0)
      locked += node->EdgeTokens();
  }
  return locked;
}

void RadixTree::CheckInvariants() const {
  std::int64_t tokens = 0;
  std::size_t nodes = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node != root_.get()) {
      MUX_CHECK(!node->edge.empty());
      MUX_CHECK(node->ref_count >= 0);
      tokens += node->EdgeTokens();
      ++nodes;
    }
    for (const auto& [key, child] : node->children) {
      MUX_CHECK(child->parent == node);
      MUX_CHECK(key == KeyFor(child->edge));
      // A child pinned by a lock implies the parent is pinned too,
      // because locks increment every node on the path.
      if (node != root_.get() && child->ref_count > 0) {
        MUX_CHECK(node->ref_count > 0);
      }
      stack.push_back(child.get());
    }
  }
  MUX_CHECK(tokens == total_tokens_);
  MUX_CHECK(nodes == node_count_);
}

void RadixTree::Audit(check::AuditContext& ctx) const {
  std::int64_t tokens = 0;
  std::size_t nodes = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node != root_.get()) {
      ctx.Check(!node->edge.empty(), "non-root node with empty edge");
      ctx.Check(node->ref_count >= 0,
                "negative ref_count " + std::to_string(node->ref_count));
      tokens += node->EdgeTokens();
      ++nodes;
    }
    for (const auto& [key, child] : node->children) {
      ctx.Check(child->parent == node, "child with stale parent link");
      ctx.Check(key == KeyFor(child->edge), "child keyed under wrong edge");
      if (node != root_.get() && child->ref_count > 0) {
        ctx.Check(node->ref_count > 0,
                  "pinned child under unpinned parent (locks must pin "
                  "whole paths)");
      }
      stack.push_back(child.get());
    }
  }
  ctx.Check(tokens == total_tokens_,
            "edge-token sum " + std::to_string(tokens) +
                " disagrees with total_tokens " +
                std::to_string(total_tokens_));
  ctx.Check(nodes == node_count_,
            "node scan " + std::to_string(nodes) +
                " disagrees with node_count " + std::to_string(node_count_));
}

}  // namespace muxwise::kv
