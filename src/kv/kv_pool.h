#ifndef MUXWISE_KV_KV_POOL_H_
#define MUXWISE_KV_KV_POOL_H_

#include <cstdint>
#include <string>

#include "check/invariant_registry.h"
#include "kv/radix_tree.h"
#include "kv/token_seq.h"
#include "obs/trace.h"
#include "sim/time.h"

namespace muxwise::kv {

/**
 * The KV-cache memory pool of one serving instance.
 *
 * Capacity is expressed in tokens (HBM left after weights and CUDA
 * graphs, divided by per-token KV bytes). Space is consumed by two
 * populations:
 *  - cached tokens living in the radix tree (evictable when unpinned);
 *  - the working set of in-flight requests (tokens being prefilled or
 *    decoded), reserved explicitly and released when a request finishes
 *    and its sequence is committed back into the tree.
 *
 * Cross-request reuse statistics (token-weighted hit rate) feed the
 * paper's Fig. 5 experiment.
 */
class KvPool {
 public:
  explicit KvPool(std::int64_t capacity_tokens);

  KvPool(const KvPool&) = delete;
  KvPool& operator=(const KvPool&) = delete;

  /** Pin on a reused prefix, held for a request's lifetime. */
  struct PrefixLease {
    RadixTree::Lock lock;
    std::int64_t matched_tokens = 0;
  };

  /**
   * Looks up the longest cached prefix of `seq`, pins it, and records
   * hit statistics (`requested` counts the full prompt length).
   */
  PrefixLease AcquirePrefix(const TokenSeq& seq, sim::Time now);

  /** Releases a prefix pin (idempotent for a moved-from lease). */
  void ReleasePrefix(PrefixLease& lease);

  /**
   * Reserves working space for `tokens` in-flight tokens, evicting
   * unpinned cache LRU-first if needed. Returns false (reserving
   * nothing) when the space cannot be produced.
   */
  bool TryReserve(std::int64_t tokens);

  /** Returns previously reserved working space. */
  void ReleaseReserved(std::int64_t tokens);

  /**
   * Inserts a finished request's full sequence into the cache (so later
   * turns can reuse it) and immediately unpins it. Evicts LRU if the
   * insert overflows capacity; skips silently if nothing is evictable.
   */
  void CommitSequence(const TokenSeq& seq, sim::Time now);

  /** Drops the entire cache (used by engines without cross-request reuse). */
  void Clear();

  /**
   * Moves `tokens` of working-set reservation to host memory: the pages
   * leave HBM (free_tokens() grows) but remain owned by their request in
   * the spill ledger until restored or dropped. Used by overload-control
   * preemption; the transfer cost is the caller's to model.
   */
  void SpillReserved(std::int64_t tokens);

  /**
   * Moves `tokens` back from the spill ledger into the HBM working set,
   * evicting unpinned cache LRU-first if needed. Returns false (ledger
   * unchanged) when the space cannot be produced.
   */
  bool TryRestoreSpilled(std::int64_t tokens);

  /** Drops `tokens` from the spill ledger (recompute or crash path). */
  void DropSpilled(std::int64_t tokens);

  std::int64_t spilled_tokens() const { return spilled_; }
  std::int64_t spilled_in_total() const { return spilled_in_total_; }
  std::int64_t restored_total() const { return restored_total_; }
  std::int64_t dropped_spill_total() const { return dropped_spill_total_; }

  std::int64_t capacity_tokens() const { return capacity_; }
  std::int64_t cached_tokens() const { return tree_.total_tokens(); }
  std::int64_t reserved_tokens() const { return reserved_; }
  std::int64_t used_tokens() const { return cached_tokens() + reserved_; }
  std::int64_t free_tokens() const { return capacity_ - used_tokens(); }

  /** Token-weighted cache hit rate over all AcquirePrefix calls. */
  double HitRate() const;

  std::int64_t lookups() const { return lookups_; }
  std::int64_t hit_tokens() const { return hit_tokens_; }
  std::int64_t requested_tokens() const { return requested_tokens_; }

  RadixTree& tree() { return tree_; }

  /**
   * Registers pool-accounting audits: token conservation
   * (cached + reserved = used <= capacity), non-negative counters,
   * radix-tree refcount consistency, and — because the harness audits
   * at scenario quiescence — that every working-set reservation and
   * prefix pin has been returned.
   */
  void RegisterAudits(check::InvariantRegistry& registry) const;

  /**
   * Attaches a tracer; occupancy changes emit "used-tokens",
   * "cached-tokens" and "reserved-tokens" counters on `track`.
   * Observational only — attaching never alters eviction decisions.
   */
  void set_tracer(obs::Tracer tracer, std::string track);

 private:
  /** Samples the occupancy counters (no-op when tracing is off). */
  void TraceOccupancy() const;

  std::int64_t capacity_;
  std::int64_t reserved_ = 0;
  RadixTree tree_;

  // Host-spill ledger: tokens whose reservation was moved off-HBM by
  // overload-control preemption. Flow conservation is audited as
  // spilled_in_total == spilled + restored_total + dropped_spill_total.
  std::int64_t spilled_ = 0;
  std::int64_t spilled_in_total_ = 0;
  std::int64_t restored_total_ = 0;
  std::int64_t dropped_spill_total_ = 0;

  obs::Tracer tracer_;
  std::string track_;

  std::int64_t lookups_ = 0;
  std::int64_t hit_tokens_ = 0;
  std::int64_t requested_tokens_ = 0;
};

}  // namespace muxwise::kv

#endif  // MUXWISE_KV_KV_POOL_H_
