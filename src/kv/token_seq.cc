#include "kv/token_seq.h"

#include <algorithm>

#include "sim/logging.h"

namespace muxwise::kv {

std::int64_t SeqLength(const TokenSeq& seq) {
  std::int64_t total = 0;
  for (const TokenSpan& span : seq) total += span.length();
  return total;
}

void AppendSpan(TokenSeq& seq, TokenSpan span) {
  MUX_CHECK(span.begin <= span.end);
  if (span.length() == 0) return;
  if (!seq.empty() && seq.back().stream == span.stream &&
      seq.back().end == span.begin) {
    seq.back().end = span.end;
    return;
  }
  seq.push_back(span);
}

TokenSeq SeqPrefix(const TokenSeq& seq, std::int64_t len) {
  MUX_CHECK(len >= 0);
  TokenSeq out;
  std::int64_t remaining = len;
  for (const TokenSpan& span : seq) {
    if (remaining <= 0) break;
    const std::int64_t take = std::min(remaining, span.length());
    AppendSpan(out, TokenSpan{span.stream, span.begin, span.begin + take});
    remaining -= take;
  }
  MUX_CHECK(remaining == 0);
  return out;
}

TokenSeq SeqSuffix(const TokenSeq& seq, std::int64_t from) {
  MUX_CHECK(from >= 0);
  TokenSeq out;
  std::int64_t to_skip = from;
  for (const TokenSpan& span : seq) {
    if (to_skip >= span.length()) {
      to_skip -= span.length();
      continue;
    }
    AppendSpan(out, TokenSpan{span.stream, span.begin + to_skip, span.end});
    to_skip = 0;
  }
  MUX_CHECK(to_skip == 0);
  return out;
}

std::int64_t CommonPrefixLength(const TokenSeq& a, const TokenSeq& b) {
  std::int64_t matched = 0;
  std::size_t ia = 0, ib = 0;
  std::int64_t oa = 0, ob = 0;  // Offsets within current spans.
  while (ia < a.size() && ib < b.size()) {
    const TokenSpan& sa = a[ia];
    const TokenSpan& sb = b[ib];
    if (sa.stream != sb.stream || sa.begin + oa != sb.begin + ob) break;
    const std::int64_t run =
        std::min(sa.length() - oa, sb.length() - ob);
    matched += run;
    oa += run;
    ob += run;
    if (oa == sa.length()) {
      ++ia;
      oa = 0;
    }
    if (ob == sb.length()) {
      ++ib;
      ob = 0;
    }
  }
  return matched;
}

}  // namespace muxwise::kv
