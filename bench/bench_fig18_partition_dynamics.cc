// Reproduces paper Fig. 18: how MuxWise's compute partition between
// prefill and decode differs across workloads (LooGLE mostly prefill,
// OpenThoughts mostly decode, ShareGPT in between), and §4.4.1's note
// that bursty traces activate every partition configuration quickly.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "workload/datasets.h"

using namespace muxwise;

namespace {

void Analyze(const harness::RunOutcome& outcome, const char* label) {
  std::map<int, std::size_t> histogram;
  double prefill_share = 0.0;
  std::size_t active_samples = 0;
  for (const auto& sample : outcome.partition_trace) {
    histogram[sample.decode_sms]++;
    if (sample.prefill_active && sample.prefill_sms > 0) {
      prefill_share += static_cast<double>(sample.prefill_sms) /
                       (sample.prefill_sms + sample.decode_sms);
      ++active_samples;
    }
  }
  std::printf("\n%s: %zu partition decisions, %zu while multiplexing\n",
              label, outcome.partition_trace.size(), active_samples);
  if (active_samples > 0) {
    std::printf("  mean SM share while multiplexing: prefill %.0f%%, "
                "decode %.0f%%\n",
                100.0 * prefill_share / active_samples,
                100.0 * (1.0 - prefill_share / active_samples));
  }
  std::printf("  decode-SM histogram:");
  for (const auto& [sms, count] : histogram) {
    std::printf("  %d:%zu", sms, count);
  }
  std::printf("\n  configurations used: %zu\n", histogram.size());
}

}  // namespace

int main() {
  const serve::Deployment d = serve::Deployment::Make(
      llm::ModelConfig::Llama70B(), gpu::GpuSpec::A100());
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(d);

  bench::Banner("Fig. 18: compute-partition dynamics per workload "
                "(MuxWise, Llama-70B, 8xA100)");
  Analyze(harness::RunWorkload(
              harness::EngineKind::kMuxWise, d,
              workload::GenerateTrace(workload::Dataset::kLoogle, 60, 0.9,
                                      1801),
              &estimator),
          "LooGLE (prefill-heavy)");
  Analyze(harness::RunWorkload(
              harness::EngineKind::kMuxWise, d,
              workload::GenerateTrace(workload::Dataset::kShareGpt, 300, 8.0,
                                      1802),
              &estimator),
          "ShareGPT (balanced)");
  Analyze(harness::RunWorkload(
              harness::EngineKind::kMuxWise, d,
              workload::GenerateTrace(workload::Dataset::kOpenThoughts, 100,
                                      1.2, 1803),
              &estimator),
          "OpenThoughts (decode-heavy)");

  bench::Banner("Sec. 4.4.1: configurations activated on a bursty trace");
  const harness::RunOutcome bursty = harness::RunWorkload(
      harness::EngineKind::kMuxWise, d,
      workload::GenerateBurstyTrace(workload::Dataset::kConversation, 3.0,
                                    120.0, 13.0, 1804),
      &estimator);
  Analyze(bursty, "Conversation (bursty)");
  std::printf(
      "\nShape check (paper): LooGLE pushes most SMs to prefill,\n"
      "OpenThoughts to decode, ShareGPT sits between (leaning prefill\n"
      "because decode is memory-bound); a bursty interval activates all\n"
      "partition configurations within seconds.\n");
  return 0;
}
