// Reproduces paper Fig. 20: CDF of TTFT per token with and without
// preemptive scheduling on a 50/50 ShareGPT + LooGLE mix at 0.5 req/s
// (paper: 1.96x improvement at the 99th percentile).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "serve/metrics.h"
#include "workload/datasets.h"

using namespace muxwise;

int main() {
  const serve::Deployment d = serve::Deployment::Make(
      llm::ModelConfig::Llama70B(), gpu::GpuSpec::A100());
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(d);

  // 50/50 mix, total ~0.32 req/s (the paper uses 0.5 on its testbed;
  // we scale to the simulated server's prefill capacity).
  const workload::Trace mixed = workload::MergeTraces(
      "ShareGPT+LooGLE",
      {workload::GenerateTrace(workload::Dataset::kShareGpt, 120, 0.12, 2001),
       workload::GenerateTrace(workload::Dataset::kLoogle, 120, 0.12, 2002)});

  harness::RunConfig with;
  harness::RunConfig without;
  core::MuxWiseEngine::Options no_preempt;
  no_preempt.dispatch.preemption = false;
  without.muxwise_options = no_preempt;

  const harness::RunOutcome on = harness::RunWorkload(
      harness::EngineKind::kMuxWise, d, mixed, &estimator, with);
  const harness::RunOutcome off = harness::RunWorkload(
      harness::EngineKind::kMuxWise, d, mixed, &estimator, without);

  bench::Banner("Fig. 20: TTFT-per-token CDF, 50/50 ShareGPT+LooGLE @ "
                "0.5 req/s (Llama-70B, 8xA100)");
  std::printf("preemptions performed: %zu (with) vs %zu (without)\n\n",
              on.preemptions, off.preemptions);
  std::printf("%12s | %14s | %14s\n", "percentile", "with (ms/tok)",
              "without (ms/tok)");
  for (double p : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    std::printf("%11.0f%% | %14.3f | %14.3f\n", p * 100,
                on.ttft_per_token_sketch.Quantile(p),
                off.ttft_per_token_sketch.Quantile(p));
  }
  for (double p : {0.75, 0.90, 0.99}) {
    const double with_p = on.ttft_per_token_sketch.Quantile(p);
    const double without_p =
        off.ttft_per_token_sketch.Quantile(p);
    if (with_p > 0) {
      std::printf("P%.0f TTFT-per-token speedup from preemption: %.2fx\n",
                  p * 100, without_p / with_p);
    }
  }
  std::printf(
      "\nShape check (paper: 1.96x at P99): preemption rescues short\n"
      "requests stuck behind long prefills — visible across the CDF body.\n"
      "In this simulation the extreme tail is long-document-behind-long-\n"
      "document queueing, which preemption (correctly) does not reorder.\n");
  return 0;
}
