// Chaos goodput study: how attained goodput degrades with fault rate
// for MuxWise versus the static-disaggregation and chunked-prefill
// baselines. Each severity level runs the same trace under a fault plan
// with an instance crash (recovered 15 s later), a straggler window,
// and an increasing per-attempt transfer-loss probability; the metric
// is the fraction of requests that completed normally (the rest were
// shed, timed out, or failed after repeated crash losses). Emits a
// table and a machine-readable JSON document.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/fault_plan.h"
#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "sim/time.h"
#include "workload/datasets.h"

using namespace muxwise;

namespace {

constexpr harness::EngineKind kEngines[] = {
    harness::EngineKind::kMuxWise, harness::EngineKind::kSglangPd,
    harness::EngineKind::kChunked};

constexpr double kFaultRates[] = {0.0, 0.01, 0.02, 0.05, 0.1};

struct Point {
  double fault_rate = 0.0;
  harness::RunOutcome outcome;
};

/**
 * The fault rate scales the whole chaos intensity: it is the
 * per-attempt transfer-loss probability directly, the crash outage
 * lasts 300x the rate in seconds (1 s at 0.0033 up to 30 s at 0.1),
 * and the straggler window slows by (1 + 10x rate). The recovery
 * policy uses operator-realistic patience — about 6x the TTFT target
 * plus 2x the decode budget — rather than the ultra-lenient default,
 * so hopeless requests actually time out instead of straggling to an
 * eventual completion minutes late.
 */
harness::RunConfig ConfigFor(double fault_rate) {
  harness::RunConfig config;
  config.drain_timeout_seconds = 240.0;
  config.recovery.ttft_deadline_factor = 6.0;
  config.recovery.tpot_deadline_factor = 2.0;
  if (fault_rate > 0.0) {
    fault::FaultPlan plan;
    plan.Crash(0, sim::Seconds(20),
               sim::Seconds(20) + sim::Seconds(300.0 * fault_rate));
    plan.Straggle(1, sim::Seconds(55), sim::Seconds(65),
                  1.0 + 10.0 * fault_rate);
    plan.DropTransfers(sim::Seconds(0), sim::Seconds(240), fault_rate);
    config.fault_plan = plan;
  }
  return config;
}

double GoodputFraction(const harness::RunOutcome& o) {
  if (o.total == 0) return 0.0;
  return static_cast<double>(o.split.attained) / static_cast<double>(o.total);
}

}  // namespace

int main() {
  const serve::Deployment d = serve::Deployment::Make(
      llm::ModelConfig::Llama70B(), gpu::GpuSpec::A100());
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(d);
  const workload::Trace trace =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 100, 2.0, 2202);

  bench::Banner("Chaos goodput: attained fraction vs fault rate (" +
                std::to_string(trace.requests.size()) +
                " requests @2 rps; outage/loss/straggle scale with rate)");
  std::printf("%-11s %10s | %8s %8s %6s %6s %6s | %8s\n", "engine",
              "fault-rate", "attained", "timedout", "shed", "failed",
              "diag", "goodput");
  std::printf("%.*s\n", 80,
              "-----------------------------------------------------------"
              "---------------------");

  std::vector<std::vector<Point>> results;
  for (harness::EngineKind kind : kEngines) {
    std::vector<Point> points;
    for (double rate : kFaultRates) {
      Point point;
      point.fault_rate = rate;
      point.outcome =
          harness::RunWorkload(kind, d, trace, &estimator, ConfigFor(rate));
      const harness::RunOutcome& o = point.outcome;
      std::printf("%-11s %10.3f | %8zu %8zu %6zu %6zu %6s | %7.1f%%\n",
                  o.engine.c_str(), rate, o.split.attained, o.split.timed_out,
                  o.split.shed, o.split.failed,
                  o.diagnostic.empty() ? "-" : "CUT",
                  100.0 * GoodputFraction(o));
      points.push_back(point);
    }
    results.push_back(points);
  }

  std::printf(
      "\nShape check: at zero fault rate every engine attains 100%%; goodput\n"
      "degrades monotonically with severity, dominated by deadline-reaped\n"
      "requests that arrived during the (severity-scaled) outage window.\n"
      "No run is cut off by the drive-loop guard, and every request is\n"
      "terminally accounted (columns sum to the request count).\n");

  // Machine-readable dump for plotting pipelines.
  std::printf("\nJSON:\n{\n  \"benchmark\": \"chaos_goodput\",\n");
  std::printf("  \"requests\": %zu,\n  \"engines\": [\n",
              trace.requests.size());
  for (std::size_t e = 0; e < results.size(); ++e) {
    std::printf("    {\"engine\": \"%s\", \"points\": [\n",
                results[e][0].outcome.engine.c_str());
    for (std::size_t i = 0; i < results[e].size(); ++i) {
      const Point& p = results[e][i];
      std::printf("      {\"fault_rate\": %.3f, \"attained\": %zu, "
                  "\"timed_out\": %zu, \"shed\": %zu, \"failed\": %zu, "
                  "\"total\": %zu, \"goodput_fraction\": %.4f}%s\n",
                  p.fault_rate, p.outcome.split.attained,
                  p.outcome.split.timed_out, p.outcome.split.shed,
                  p.outcome.split.failed, p.outcome.total,
                  GoodputFraction(p.outcome),
                  i + 1 < results[e].size() ? "," : "");
    }
    std::printf("    ]}%s\n", e + 1 < results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
