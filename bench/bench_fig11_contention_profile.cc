// Reproduces paper Fig. 11: decode slowdown when spatially multiplexed
// with prefill, across SM partitions, models and GPUs — plus the
// contention-guard coverage this profiling produces (paper §3.3.2:
// slowdowns stay within ~20% on A100 and ~30% on H100-class parts).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/estimator.h"
#include "gpu/gpu.h"
#include "llm/cost_model.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "sim/simulator.h"

using namespace muxwise;

namespace {

void Profile(const llm::ModelConfig& model, const gpu::GpuSpec& spec) {
  const llm::CostModel cost(model, 8, spec);
  std::printf("\n%s on 8x %s (decode bs=32; slowdown min..max over "
              "prefill ctx 1K..128K, decode reuse 1K..32K)\n",
              model.name.c_str(), spec.name.c_str());
  std::printf("%12s | %10s | %10s | %10s\n", "decode SMs", "min", "mean",
              "max");

  for (int decode_sms = 16; decode_sms + spec.min_partition_sms <= spec.sm_count;
       decode_sms += 16) {
    double min_s = 1e9, max_s = 0.0, sum = 0.0;
    int count = 0;
    for (std::int64_t pf_ctx : {1024, 8192, 32768, 131072}) {
      for (std::int64_t dc_ctx : {1024, 4096, 16384, 32768}) {
        sim::Simulator simulator;
        gpu::Gpu device(&simulator, spec);
        const gpu::StreamId prefill_stream =
            device.CreateStream(spec.sm_count - decode_sms);
        const gpu::StreamId decode_stream = device.CreateStream(decode_sms);
        const std::vector<std::int64_t> ctx(32, dc_ctx);
        const gpu::Kernel decode = cost.DecodeIteration(ctx);
        const gpu::Kernel prefill =
            cost.PrefillLayers({llm::SeqWork{pf_ctx / 2, pf_ctx / 2}}, 4);
        const double solo = device.SoloDurationSeconds(decode, decode_sms);
        sim::Time done = 0;
        device.Launch(prefill_stream, prefill, {});
        device.Launch(decode_stream, decode,
                      [&] { done = simulator.Now(); });
        simulator.Run();
        const double slowdown = sim::ToSeconds(done) / solo;
        min_s = std::min(min_s, slowdown);
        max_s = std::max(max_s, slowdown);
        sum += slowdown;
        ++count;
      }
    }
    std::printf("%12d | %9.1f%% | %9.1f%% | %9.1f%%\n", decode_sms,
                100 * (min_s - 1), 100 * (sum / count - 1),
                100 * (max_s - 1));
  }
}

}  // namespace

int main() {
  bench::Banner("Fig. 11: decode slowdown under PD multiplexing");
  Profile(llm::ModelConfig::Llama8B(), gpu::GpuSpec::A100());
  Profile(llm::ModelConfig::Llama70B(), gpu::GpuSpec::A100());
  Profile(llm::ModelConfig::Llama8B(), gpu::GpuSpec::H100());
  Profile(llm::ModelConfig::Llama70B(), gpu::GpuSpec::H100());

  bench::Banner("Contention guard built from this profiling (paper §3.3.2)");
  for (const gpu::GpuSpec& spec :
       {gpu::GpuSpec::A100(), gpu::GpuSpec::H100()}) {
    const serve::Deployment d =
        serve::Deployment::Make(llm::ModelConfig::Llama70B(), spec);
    const core::ContentionEstimator estimator =
        core::ContentionEstimator::BuildOffline(d);
    std::printf("%s: %zu grid cells, max guard factor %.2fx\n",
                spec.name.c_str(), estimator.guard_cells(),
                estimator.MaxGuard());
  }
  std::printf(
      "\nShape check (paper): slowdown varies from ~0 to tens of percent\n"
      "across partitions and is hard to predict analytically — motivating\n"
      "the worst-case grid guard; A100 stays within ~20%%, H100 ~30%%.\n");
  return 0;
}
