// Simulator-substrate microbenchmarks (event throughput, same-tick
// storms, kernel-launch churn, acceptance scenario), runnable standalone
// or through tools/benchrun. Emits a schema-versioned BENCH_simcore.json
// that `benchrun --diff` gates against the committed baseline.
//
// Usage: bench_simcore [--smoke|--full] [--repeat=N] [--filter=SUBSTR]
//                      [--out=FILE]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "benchrun/report.h"
#include "benchrun/simcore.h"

namespace {

using muxwise::benchrun::BenchReport;
using muxwise::benchrun::BenchResult;
using muxwise::benchrun::MachineInfo;
using muxwise::benchrun::RunSimcoreBench;
using muxwise::benchrun::SimcoreBenchNames;
using muxwise::benchrun::SimcoreOptions;

bool StartsWith(const char* arg, const char* prefix) {
  return std::strncmp(arg, prefix, std::strlen(prefix)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  SimcoreOptions options;
  options.smoke = true;
  options.repeat = 5;
  std::string filter;
  std::string out = "BENCH_simcore.json";

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      options.smoke = true;
    } else if (std::strcmp(arg, "--full") == 0) {
      options.smoke = false;
      options.repeat = 3;
    } else if (StartsWith(arg, "--repeat=")) {
      options.repeat = std::atoi(arg + std::strlen("--repeat="));
    } else if (StartsWith(arg, "--filter=")) {
      filter = arg + std::strlen("--filter=");
    } else if (StartsWith(arg, "--out=")) {
      out = arg + std::strlen("--out=");
    } else {
      std::fprintf(stderr,
                   "usage: bench_simcore [--smoke|--full] [--repeat=N] "
                   "[--filter=SUBSTR] [--out=FILE]\n");
      return 2;
    }
  }

  BenchReport report;
  report.suite = options.smoke ? "smoke" : "full";
  report.repeat = options.repeat;
  report.machine = MachineInfo::Detect();

  bool all_ok = true;
  for (const std::string& name : SimcoreBenchNames()) {
    if (!filter.empty() && name.find(filter) == std::string::npos) continue;
    BenchResult result = RunSimcoreBench(name, options);
    std::printf("[bench] %-20s %10.2f ms %12.0f ev/s %10llu events %016llx%s\n",
                result.name.c_str(), result.wall_ms_median,
                result.events_per_sec,
                static_cast<unsigned long long>(result.sim_events),
                static_cast<unsigned long long>(result.digest),
                result.ok ? "" : "  FAILED");
    if (!result.ok && !result.note.empty()) {
      std::printf("        %s\n", result.note.c_str());
    }
    all_ok = all_ok && result.ok;
    report.benches.push_back(std::move(result));
  }

  if (!muxwise::benchrun::SaveReport(out, report)) {
    std::fprintf(stderr, "bench_simcore: cannot write %s\n", out.c_str());
    return 2;
  }
  std::printf("wrote %s (%zu benches)\n", out.c_str(), report.benches.size());
  return all_ok ? 0 : 1;
}
