// Reproduces paper Fig. 17 (99%-ile TTFT and TBT on the three synthetic
// single-turn workloads, Llama-70B on 8xA100, Poisson arrivals) and the
// paper's §4.3.1 single-GPU study (Llama-8B on one A100 with ShareGPT).

#include <cstdio>

#include "bench_util.h"
#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "workload/datasets.h"

using namespace muxwise;

namespace {

void RunWorkloadPanel(workload::Dataset dataset, double rate,
                      int num_requests, const serve::Deployment& d,
                      const core::ContentionEstimator& estimator) {
  const workload::Trace trace =
      workload::GenerateTrace(dataset, num_requests, rate, 1700);
  bench::Banner(std::string("Fig. 17: ") + workload::DatasetName(dataset) +
                " @ " + std::to_string(rate) + " req/s, Llama-70B 8xA100");
  bench::PrintLatencyHeader();
  for (harness::EngineKind kind :
       {harness::EngineKind::kMuxWise, harness::EngineKind::kChunked,
        harness::EngineKind::kNanoFlow, harness::EngineKind::kLoongServe,
        harness::EngineKind::kSglangPd}) {
    harness::RunConfig config;
    config.drain_timeout_seconds = 600.0;
    bench::PrintLatencyRow(
        harness::RunWorkload(kind, d, trace, &estimator, config));
  }
}

}  // namespace

int main() {
  const serve::Deployment d = serve::Deployment::Make(
      llm::ModelConfig::Llama70B(), gpu::GpuSpec::A100());
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(d);

  RunWorkloadPanel(workload::Dataset::kShareGpt, 8.0, 300, d, estimator);
  RunWorkloadPanel(workload::Dataset::kLoogle, 0.15, 50, d, estimator);
  RunWorkloadPanel(workload::Dataset::kOpenThoughts, 0.55, 80, d, estimator);

  // Goodput summary on ShareGPT (the paper quotes Fig. 17 as goodput
  // ratios: 1.9x/1.73x/9.5x/1.46x over chunked/NanoFlow/LoongServe/
  // SGLang-PD).
  bench::Banner("Fig. 17 goodput summary: ShareGPT, Llama-70B 8xA100");
  {
    const workload::Trace base = workload::GenerateTrace(
        workload::Dataset::kShareGpt, 3000, 1.0, 1750);
    const std::vector<double> share_rates = {2, 4, 6, 8, 10, 12, 16,
                                             20, 24, 28, 32};
    double mux = 0.0;
    for (harness::EngineKind kind :
         {harness::EngineKind::kMuxWise, harness::EngineKind::kChunked,
          harness::EngineKind::kNanoFlow, harness::EngineKind::kLoongServe,
          harness::EngineKind::kSglangPd}) {
      const harness::GoodputResult result =
          harness::SweepGoodput(kind, d, base, share_rates, &estimator);
      std::printf("%-11s goodput: %5.1f req/s", harness::EngineKindName(kind),
                  result.goodput_rps);
      if (kind == harness::EngineKind::kMuxWise) {
        mux = result.goodput_rps;
        std::printf("\n");
      } else if (result.goodput_rps > 0) {
        std::printf("   (MuxWise: %.2fx)\n", mux / result.goodput_rps);
      } else {
        std::printf("   (never meets the SLO)\n");
      }
    }
  }

  // §4.3.1: short requests on a single GPU.
  bench::Banner("Sec. 4.3.1: Llama-8B on one A100, ShareGPT "
                "(goodput, 50 ms TBT SLO)");
  const serve::Deployment single = serve::Deployment::Make(
      llm::ModelConfig::Llama8B(), gpu::GpuSpec::A100(), /*num_gpus=*/1);
  const core::ContentionEstimator single_estimator =
      core::ContentionEstimator::BuildOffline(single);
  const workload::Trace base =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 200, 1.0, 1701);
  const std::vector<double> rates = {4, 6, 8, 10, 12, 14, 16, 18, 20};
  double mux_goodput = 0, chunked_goodput = 0;
  for (harness::EngineKind kind :
       {harness::EngineKind::kMuxWise, harness::EngineKind::kChunked}) {
    const harness::GoodputResult result = harness::SweepGoodput(
        kind, single, base, rates, &single_estimator);
    std::printf("%-11s goodput: %.1f req/s\n",
                harness::EngineKindName(kind), result.goodput_rps);
    if (kind == harness::EngineKind::kMuxWise) {
      mux_goodput = result.goodput_rps;
    } else {
      chunked_goodput = result.goodput_rps;
    }
  }
  if (chunked_goodput > 0) {
    std::printf("single-GPU goodput ratio: %.2fx (paper: ~1.2x)\n",
                mux_goodput / chunked_goodput);
  }
  std::printf(
      "\nShape check (paper): MuxWise improves goodput on all three\n"
      "synthetic workloads (1.9x/1.71x/2x over chunked); LoongServe\n"
      "struggles on OpenThoughts (long outputs), NanoFlow only helps on\n"
      "ShareGPT, and SGLang-PD queues prefills on LooGLE.\n");
  return 0;
}
