// Reproduces paper §4.5: the overheads of realizing PD multiplexing —
// CUDA-graph memory per partition configuration (~6.2% of HBM), the
// green-context allocation itself (negligible), and the runtime cost of
// layer-wise prefill launching (< 1.5%).

#include <cstdio>

#include "bench_util.h"
#include "gpu/gpu.h"
#include "gpu/gpu_spec.h"
#include "gpu/host.h"
#include "llm/cost_model.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "sim/simulator.h"

using namespace muxwise;

namespace {

void MemoryOverhead(const llm::ModelConfig& model, const gpu::GpuSpec& spec) {
  serve::Deployment d = serve::Deployment::Make(model, spec);
  const std::int64_t base_pool = d.PoolTokens(d.num_gpus);
  // MuxWise records decode CUDA graphs per partition configuration.
  const double mux_graph_fraction = 0.032;
  const std::int64_t mux_pool = d.PoolTokens(d.num_gpus, mux_graph_fraction);
  const double total_hbm = spec.hbm_capacity * d.num_gpus;
  const double extra_bytes = total_hbm * mux_graph_fraction + 4e6;
  std::printf("%-10s on 8x %s: +%.1f GB graphs+contexts (%.1f%% of HBM), "
              "KV pool %lld -> %lld tokens (-%.1f%%)\n",
              model.name.c_str(), spec.name.c_str(), extra_bytes / 1e9,
              100.0 * extra_bytes / total_hbm,
              static_cast<long long>(base_pool),
              static_cast<long long>(mux_pool),
              100.0 * (base_pool - mux_pool) / base_pool);
}

void RuntimeOverhead(const llm::ModelConfig& model) {
  const gpu::GpuSpec spec = gpu::GpuSpec::A100();
  const llm::CostModel cost(model, 8, spec);

  std::printf("\n%s: layer-wise vs whole-phase prefill execution\n",
              model.name.c_str());
  std::printf("%8s %8s | %12s | %12s | %9s\n", "tokens", "reused",
              "full (ms)", "layered (ms)", "overhead");
  for (std::int64_t tokens : {1024, 4096, 16384}) {
    for (std::int64_t reused : {0, 16384}) {
      // Whole phase: one kernel, one piecewise-graph launch sequence.
      sim::Simulator s1;
      gpu::Gpu d1(&s1, spec);
      gpu::HostThread h1(&s1);
      const gpu::StreamId st1 = d1.CreateStream(spec.sm_count);
      sim::Time full_done = 0;
      h1.Submit(cost.PrefillLayerLaunch() * model.num_layers, [&] {
        d1.Launch(st1, cost.PrefillPhase({llm::SeqWork{tokens, reused}}),
                  [&] { full_done = s1.Now(); });
      });
      s1.Run();

      // Finest-granularity layer-wise execution: one launch + kernel
      // per layer, serialized on the host+stream.
      sim::Simulator s2;
      gpu::Gpu d2(&s2, spec);
      gpu::HostThread h2(&s2);
      const gpu::StreamId st2 = d2.CreateStream(spec.sm_count);
      sim::Time layered_done = 0;
      for (int layer = 0; layer < model.num_layers; ++layer) {
        h2.Submit(cost.PrefillLayerLaunch(), [&, layer] {
          d2.Launch(st2,
                    cost.PrefillLayers({llm::SeqWork{tokens, reused}}, 1),
                    [&] { layered_done = s2.Now(); });
        });
      }
      s2.Run();

      const double full_ms = sim::ToMilliseconds(full_done);
      const double layered_ms = sim::ToMilliseconds(layered_done);
      std::printf("%8lld %8lld | %12.1f | %12.1f | %8.2f%%\n",
                  static_cast<long long>(tokens),
                  static_cast<long long>(reused), full_ms, layered_ms,
                  100.0 * (layered_ms - full_ms) / full_ms);
    }
  }
}

}  // namespace

int main() {
  bench::Banner("Sec. 4.5 memory: CUDA-graph + green-context overhead");
  MemoryOverhead(llm::ModelConfig::Llama8B(), gpu::GpuSpec::A100());
  MemoryOverhead(llm::ModelConfig::Llama70B(), gpu::GpuSpec::A100());
  MemoryOverhead(llm::ModelConfig::Llama70B(), gpu::GpuSpec::H100());

  bench::Banner("Sec. 4.5 runtime: layer-wise launch overhead "
                "(paper: within 1.5%)");
  RuntimeOverhead(llm::ModelConfig::Llama70B());
  RuntimeOverhead(llm::ModelConfig::Llama8B());
  return 0;
}
