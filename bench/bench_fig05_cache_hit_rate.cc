// Reproduces paper Fig. 5: KV-cache hit rate under varying pool
// capacities with LRU eviction, on the multi-turn Conversation and
// Tool&Agent workloads. The paper's headline numbers: the optimal hit
// rate (~36.6%) needs several TB of cache for a 70B model, and halving
// the pool (disaggregation) collapses it (e.g. 36.6% -> 4.2%).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "kv/kv_pool.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "sim/time.h"
#include "workload/datasets.h"

using namespace muxwise;

namespace {

/**
 * Replays a trace against a pool of the given capacity: each request
 * looks up its prompt prefix, then commits its full sequence (the cache
 * behaviour of an aggregated serving engine, without compute).
 */
double ReplayHitRate(const workload::Trace& trace,
                     std::int64_t capacity_tokens) {
  kv::KvPool pool(capacity_tokens);
  for (const workload::RequestSpec& spec : trace.requests) {
    const sim::Time now = sim::Seconds(spec.arrival_seconds);
    kv::KvPool::PrefixLease lease = pool.AcquirePrefix(spec.prompt, now);
    pool.ReleasePrefix(lease);
    pool.CommitSequence(spec.full_seq, now);
  }
  return pool.HitRate();
}

}  // namespace

int main() {
  const llm::ModelConfig model = llm::ModelConfig::Llama70B();
  const double kv_bytes = model.KvBytesPerToken();

  bench::Banner("Fig. 5: cache hit rate vs KV pool capacity "
                "(LRU, Llama-70B KV sizing)");
  std::printf("%12s", "capacity");
  const char* names[] = {"Conversation", "Tool&Agent"};
  for (const char* name : names) std::printf(" | %12s", name);
  std::printf("\n");

  const workload::Trace conv = workload::GenerateTrace(
      workload::Dataset::kConversation, 4000, 10.0, 501);
  const workload::Trace tool = workload::GenerateTrace(
      workload::Dataset::kToolAgent, 4000, 10.0, 502);
  const workload::Trace* traces[] = {&conv, &tool};

  // Capacities from a fraction of one server up to "several TB".
  const std::vector<double> capacities_gb = {50,   100,  200,  430,
                                             860,  1700, 3300, 6600};
  for (double gb : capacities_gb) {
    const std::int64_t tokens = static_cast<std::int64_t>(gb * 1e9 / kv_bytes);
    std::printf("%9.0f GB", gb);
    for (const workload::Trace* trace : traces) {
      std::printf(" | %11.1f%%", 100.0 * ReplayHitRate(*trace, tokens));
    }
    std::printf("\n");
  }

  // The deployment-relevant comparison: aggregated TP8 pool vs the two
  // halved TP4 pools of static disaggregation.
  const serve::Deployment d = serve::Deployment::Make(
      model, gpu::GpuSpec::A100());
  bench::Banner("Disaggregation pool-split effect (same 8xA100 server)");
  std::printf("aggregated TP8 pool : %6.1f GB -> hit rate %.1f%%\n",
              d.PoolTokens(8) * kv_bytes / 1e9,
              100.0 * ReplayHitRate(conv, d.PoolTokens(8)));
  std::printf("disaggregated TP4   : %6.1f GB -> hit rate %.1f%%\n",
              d.PoolTokens(4) * kv_bytes / 1e9,
              100.0 * ReplayHitRate(conv, d.PoolTokens(4)));
  std::printf(
      "\nShape check (paper): hit rate rises with capacity toward its\n"
      "optimum at multi-TB pools, and the halved disaggregated pool loses\n"
      "a large fraction of the aggregated hit rate.\n");
  return 0;
}
