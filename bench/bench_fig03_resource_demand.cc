// Reproduces paper Fig. 3: compute and memory demand of the prefill and
// decode phases under SLO constraints as the reused context grows.
//
// (a) Prefill: batch 1, 2K new tokens, 400 ms TTFT target — report the
//     minimum number of A100-GPU-equivalents (partition ratio x 8) that
//     meets the target.
// (b) Decode: batch 32, 100 ms TBT target — report the compute demand
//     and the KV-cache footprint, which reaches hundreds of GB.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "gpu/gpu.h"
#include "gpu/gpu_spec.h"
#include "llm/cost_model.h"
#include "llm/model_config.h"
#include "sim/simulator.h"

using namespace muxwise;

namespace {

/** Minimum per-GPU SM allocation meeting `target_seconds`. */
int MinSmsFor(const gpu::Gpu& device, const gpu::Kernel& kernel,
              double target_seconds) {
  for (int sms = 4; sms <= device.spec().sm_count; sms += 4) {
    if (device.SoloDurationSeconds(kernel, sms) <= target_seconds) {
      return sms;
    }
  }
  return device.spec().sm_count + 1;  // Unattainable on one server.
}

}  // namespace

int main() {
  const llm::ModelConfig model = llm::ModelConfig::Llama70B();
  const gpu::GpuSpec spec = gpu::GpuSpec::A100();
  const llm::CostModel cost(model, 8, spec);
  sim::Simulator simulator;
  const gpu::Gpu device(&simulator, spec);

  const std::vector<std::int64_t> reused_grid = {0,     4096,  16384, 32768,
                                                 65536, 98304, 120000};

  bench::Banner("Fig. 3-(a): prefill compute demand vs reused length "
                "(Llama-70B, 8xA100, new=2K, TTFT 400 ms)");
  std::printf("%10s | %12s | %10s\n", "reused", "GPU_ratio", "GPU_num");
  for (std::int64_t reused : reused_grid) {
    const gpu::Kernel kernel =
        cost.PrefillPhase({llm::SeqWork{2048, reused}});
    const int sms = MinSmsFor(device, kernel, 0.400);
    const double ratio =
        static_cast<double>(sms) / spec.sm_count;  // Per-GPU share.
    if (sms > spec.sm_count) {
      std::printf("%10lld | %12s | %10s\n",
                  static_cast<long long>(reused), ">1.00", ">8.0");
    } else {
      std::printf("%10lld | %12.2f | %10.1f\n",
                  static_cast<long long>(reused), ratio, ratio * 8);
    }
  }

  bench::Banner("Fig. 3-(b): decode compute + KV memory vs reused length "
                "(batch 32, TBT 100 ms)");
  std::printf("%10s | %12s | %10s | %12s\n", "reused", "GPU_ratio",
              "GPU_num", "KV-cache GB");
  for (std::int64_t reused : reused_grid) {
    const std::vector<std::int64_t> ctx(32, std::max<std::int64_t>(reused, 1));
    const gpu::Kernel kernel = cost.DecodeIteration(ctx);
    const int sms = MinSmsFor(device, kernel, 0.100);
    const double ratio = static_cast<double>(sms) / spec.sm_count;
    const double kv_gb = 32.0 * reused * model.KvBytesPerToken() / 1e9;
    std::printf("%10lld | %12.2f | %10.1f | %12.1f\n",
                static_cast<long long>(reused), ratio, ratio * 8, kv_gb);
  }

  std::printf(
      "\nShape check (paper): prefill demand grows with reused length while\n"
      "decode demand stays nearly flat; decode KV reaches hundreds of GB,\n"
      "so compute and memory demands are misaligned across phases.\n");
  return 0;
}
