// Reproduces paper Fig. 15 (TBT SLO attainment under increasing Poisson
// request rates on the Tool&Agent workload; goodput = the highest rate
// meeting the 99%-ile SLO) and Table 5 (token throughput and GPU
// utilization at goodput).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "baselines/chunked_prefill.h"
#include "workload/datasets.h"

using namespace muxwise;

namespace {

void RunModel(const llm::ModelConfig& model,
              const std::vector<double>& rates, int num_requests) {
  const serve::Deployment d =
      serve::Deployment::Make(model, gpu::GpuSpec::A100());
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(d);
  const workload::Trace base = workload::GenerateTrace(
      workload::Dataset::kToolAgent, num_requests, 1.0, 1500);

  bench::Banner("Fig. 15: SLO attainment vs request rate — " + model.name +
                " on 8xA100, Tool&Agent, TBT target " +
                std::to_string(static_cast<int>(
                    sim::ToMilliseconds(d.slo.tbt))) +
                " ms");
  std::printf("%-11s", "engine");
  for (double r : rates) std::printf(" | %5.1f/s", r);
  std::printf(" | goodput\n");

  struct Row {
    harness::EngineKind kind;
    harness::GoodputResult result;
  };
  std::vector<Row> rows;
  for (harness::EngineKind kind :
       {harness::EngineKind::kMuxWise, harness::EngineKind::kChunked,
        harness::EngineKind::kNanoFlow, harness::EngineKind::kLoongServe,
        harness::EngineKind::kSglangPd}) {
    harness::RunConfig config;
    config.drain_timeout_seconds = 180.0;
    if (kind == harness::EngineKind::kChunked ||
        kind == harness::EngineKind::kNanoFlow) {
      // Offline per-workload budget tuning (SARATHI methodology): the
      // Tool&Agent chunks attend several-K reused tokens.
      config.token_budget = baselines::ChunkedPrefillEngine::TuneTokenBudget(
          d, d.slo.tbt, 32, 1024, 4096);
    }
    Row row{kind, harness::SweepGoodput(kind, d, base, rates, &estimator,
                                        config)};
    std::printf("%-11s", harness::EngineKindName(kind));
    std::size_t i = 0;
    for (double r : rates) {
      (void)r;
      if (i < row.result.points.size()) {
        const harness::RunOutcome& o = row.result.points[i].outcome;
        if (!o.stable) {
          std::printf(" | unstbl");
        } else {
          std::printf(" | %5.1f%%", 100.0 * o.tbt_attainment);
        }
      } else {
        std::printf(" |      -");
      }
      ++i;
    }
    if (row.result.goodput_rps > 0) {
      std::printf(" | %.1f req/s\n", row.result.goodput_rps);
    } else {
      std::printf(" | none\n");
    }
    rows.push_back(std::move(row));
  }

  bench::Banner("Table 5: throughput and GPU utilization at goodput — " +
                model.name);
  std::printf("%-11s | %9s | %12s | %s\n", "engine", "goodput",
              "tokens/s", "GPU util");
  double muxwise_goodput = 0.0;
  for (const Row& row : rows) {
    if (row.kind == harness::EngineKind::kMuxWise) {
      muxwise_goodput = row.result.goodput_rps;
    }
    if (!row.result.at_goodput.has_value()) {
      std::printf("%-11s | %9s | %12s | -\n",
                  harness::EngineKindName(row.kind), "none", "-");
      continue;
    }
    const harness::RunOutcome& o = *row.result.at_goodput;
    std::printf("%-11s | %5.1f r/s | %12.0f | ",
                harness::EngineKindName(row.kind), row.result.goodput_rps,
                o.token_throughput);
    if (o.gpu_utilization.size() == 2) {
      std::printf("P(%.1f)/D(%.1f)\n", o.gpu_utilization[0],
                  o.gpu_utilization[1]);
    } else if (!o.gpu_utilization.empty()) {
      std::printf("%.1f\n", o.gpu_utilization[0]);
    } else {
      std::printf("-\n");
    }
  }
  for (const Row& row : rows) {
    if (row.kind != harness::EngineKind::kMuxWise &&
        row.result.goodput_rps > 0 && muxwise_goodput > 0) {
      std::printf("goodput ratio MuxWise / %s = %.2fx\n",
                  harness::EngineKindName(row.kind),
                  muxwise_goodput / row.result.goodput_rps);
    }
  }
}

}  // namespace

int main() {
  RunModel(llm::ModelConfig::Llama8B(),
           {2, 4, 6, 8, 10, 14, 18, 22, 26, 30, 36, 42, 48}, 2500);
  RunModel(llm::ModelConfig::Llama70B(),
           {0.2, 0.3, 0.4, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0}, 600);
  std::printf(
      "\nShape check (paper): MuxWise sustains the highest goodput "
      "(2.6x/5.2x/2.0x/1.3x over chunked/NanoFlow/LoongServe/SGLang-PD on\n"
      "Llama-8B; 3.06x/2.62x/1.62x on Llama-70B), with the highest token\n"
      "throughput and GPU utilization at goodput (Table 5).\n");
  return 0;
}
