// Reproduces paper Fig. 6: the chunked-prefill dilemma.
//
// (a) TBT of a fused iteration vs token budget (decode batch 32, 1K
//     reused per decode seq): latency grows sublinearly until ~4K
//     tokens saturate the GPUs, but the SLO-compliant budget is ~256 —
//     8x-16x below saturation.
// (b) TBT vs the reused-context length of the fused prefill chunk at a
//     fixed 512 budget: repeated KV reads inflate TBT noticeably beyond
//     ~4K reused tokens, breaking the SLO for long-context workloads.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "gpu/gpu.h"
#include "llm/cost_model.h"
#include "llm/model_config.h"
#include "sim/simulator.h"

using namespace muxwise;

int main() {
  const llm::ModelConfig model = llm::ModelConfig::Llama70B();
  const gpu::GpuSpec spec = gpu::GpuSpec::A100();
  const llm::CostModel cost(model, 8, spec);
  sim::Simulator simulator;
  const gpu::Gpu device(&simulator, spec);

  const std::vector<std::int64_t> decode_ctx(32, 1024);
  auto iteration_ms = [&](std::int64_t chunk, std::int64_t chunk_reused) {
    const gpu::Kernel fused = cost.FusedChunk(
        chunk > 0 ? std::vector<llm::SeqWork>{llm::SeqWork{chunk,
                                                           chunk_reused}}
                  : std::vector<llm::SeqWork>{},
        decode_ctx);
    return device.SoloDurationSeconds(fused, spec.sm_count) * 1e3 +
           sim::ToMilliseconds(cost.DecodeGraphLaunch());
  };

  bench::Banner("Fig. 6-(a): TBT vs token budget "
                "(Llama-70B 8xA100, decode bs=32 @1K reused)");
  std::printf("%8s | %10s | %14s\n", "budget", "TBT (ms)", "ms per token");
  double t_prev = 0.0;
  for (std::int64_t budget : {64, 128, 256, 512, 1024, 2048, 4096, 8192}) {
    const std::int64_t chunk = std::max<std::int64_t>(1, budget - 32);
    const double ms = iteration_ms(chunk, 1024);
    std::printf("%8lld | %10.1f | %14.4f\n", static_cast<long long>(budget),
                ms, ms / budget);
    t_prev = ms;
  }
  (void)t_prev;
  std::printf("(paper anchors: ~100 ms at a 256 budget, ~505 ms at 4K "
              "where the GPUs saturate)\n");

  bench::Banner("Fig. 6-(b): TBT vs reused context of the prefill chunk "
                "(budget 512)");
  std::printf("%10s | %10s\n", "reused", "TBT (ms)");
  for (std::int64_t reused :
       {0, 1024, 4096, 16384, 32768, 65536, 131072 - 512}) {
    std::printf("%10lld | %10.1f\n", static_cast<long long>(reused),
                iteration_ms(512 - 32, reused));
  }
  std::printf(
      "\nShape check (paper): TBT rises noticeably beyond ~4K reused\n"
      "context and far exceeds the 100 ms SLO at multi-turn lengths —\n"
      "further chunking cannot fix it (the reads repeat per chunk).\n");
  return 0;
}
