#ifndef MUXWISE_BENCH_BENCH_UTIL_H_
#define MUXWISE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "harness/runner.h"

namespace muxwise::bench {

/** Prints a section banner. */
inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/** Header for the standard latency table. */
inline void PrintLatencyHeader() {
  std::printf("%-11s %7s | %9s %9s | %8s %8s | %6s\n", "engine", "stable",
              "TTFT-p99", "TTFT-avg", "TBT-p99", "TBT-avg", "attain");
  std::printf("%.*s\n", 78,
              "-----------------------------------------------------------"
              "--------------------");
}

/** One standard latency row (values in ms; '*' flags unstable runs). */
inline void PrintLatencyRow(const harness::RunOutcome& o) {
  std::printf("%-11s %7s | %9.1f %9.1f | %8.2f %8.2f | %5.1f%%%s\n",
              o.engine.c_str(), o.stable ? "yes" : "NO", o.ttft.p99_ms,
              o.ttft.mean_ms, o.tbt.p99_ms, o.tbt.mean_ms,
              100.0 * o.tbt_attainment, o.stable ? "" : "  *clipped");
}

/** The paper's Table 3/4 row format (other latency metrics). */
inline void PrintOtherMetricsHeader() {
  std::printf("%-11s | %8s %8s | %8s %8s | %8s %8s | %8s %8s\n", "engine",
              "TTFT-avg", "TTFT-p50", "TBT-avg", "TBT-p50", "E2E-avg",
              "E2E-p50", "TPOT-avg", "TPOT-p50");
  std::printf("%.*s\n", 96,
              "-----------------------------------------------------------"
              "---------------------------------------");
}

inline void PrintOtherMetricsRow(const harness::RunOutcome& o) {
  std::printf(
      "%-11s | %8.2f %8.2f | %8.2f %8.2f | %8.2f %8.2f | %8.2f %8.2f\n",
      o.engine.c_str(), o.ttft.mean_ms / 1000.0, o.ttft.p50_ms / 1000.0,
      o.tbt.mean_ms, o.tbt.p50_ms, o.e2e.mean_ms / 1000.0,
      o.e2e.p50_ms / 1000.0, o.tpot.mean_ms, o.tpot.p50_ms);
}

}  // namespace muxwise::bench

#endif  // MUXWISE_BENCH_BENCH_UTIL_H_
