// Reproduces the solo-run predictor accuracy claims of paper §3.3.2
// (Eq. 1 / Eq. 2, complexity per Table 2): trained per LLM-machine pair
// and per partition configuration, with maximum relative deviations of
// 8.16% (prefill) and 8.84% (decode) in the paper.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "gpu/gpu.h"
#include "llm/cost_model.h"
#include "llm/model_config.h"
#include "llm/predictor.h"
#include "serve/deployment.h"
#include "sim/simulator.h"

using namespace muxwise;

namespace {

void Evaluate(const llm::ModelConfig& model, const gpu::GpuSpec& spec) {
  const serve::Deployment d = serve::Deployment::Make(model, spec);
  sim::Simulator simulator;
  const gpu::Gpu device(&simulator, spec);
  const llm::CostModel cost(model, d.num_gpus, spec);
  const llm::SoloRunPredictor predictor =
      llm::SoloRunPredictor::Train(device, cost, d.SmPartitionOptions());

  std::printf("\n%s on 8x %s\n", model.name.c_str(), spec.name.c_str());
  std::printf("%6s | %16s | %16s\n", "SMs", "prefill max dev", "decode max dev");
  double worst_prefill = 0.0, worst_decode = 0.0;
  for (int sms : predictor.TrainedSmOptions()) {
    const double p = predictor.PrefillMaxError(sms);
    const double dd = predictor.DecodeMaxError(sms);
    worst_prefill = std::max(worst_prefill, p);
    worst_decode = std::max(worst_decode, dd);
    std::printf("%6d | %15.2f%% | %15.2f%%\n", sms, 100 * p, 100 * dd);
  }
  std::printf("worst-case: prefill %.2f%%, decode %.2f%% "
              "(paper: 8.16%% / 8.84%%)\n",
              100 * worst_prefill, 100 * worst_decode);

  // Out-of-grid spot checks (batched prefill, mixed contexts).
  const std::vector<llm::SeqWork> batch = {llm::SeqWork{3000, 6000},
                                           llm::SeqWork{700, 0}};
  const double truth =
      device.SoloDurationSeconds(cost.PrefillPhase(batch), 96);
  const double pred = sim::ToSeconds(predictor.PredictPrefill(batch, 96));
  std::printf("spot check, batched prefill @96 SMs: truth %.1f ms, "
              "predicted %.1f ms (%.1f%% off)\n",
              truth * 1e3, pred * 1e3, 100.0 * (pred - truth) / truth);
}

}  // namespace

int main() {
  bench::Banner("Table 2 / Eq. 1-2: solo-run predictor accuracy");
  Evaluate(llm::ModelConfig::Llama70B(), gpu::GpuSpec::A100());
  Evaluate(llm::ModelConfig::Llama8B(), gpu::GpuSpec::A100());
  Evaluate(llm::ModelConfig::Llama70B(), gpu::GpuSpec::H100());
  return 0;
}
