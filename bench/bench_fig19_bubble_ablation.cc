// Reproduces paper Fig. 19 (ablating the bubble-less multiplex engine:
// disable layer-wise scheduling, then also query-based synchronization)
// and §4.4.2 (bubble ratios of MuxWise vs chunked prefill under load).

#include <cstdio>

#include "bench_util.h"
#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "workload/datasets.h"

using namespace muxwise;

namespace {

harness::RunOutcome RunVariant(const serve::Deployment& d,
                               const workload::Trace& trace,
                               const core::ContentionEstimator& estimator,
                               bool layerwise, bool query_sync,
                               const char* label) {
  harness::RunConfig config;
  core::MuxWiseEngine::Options options;
  options.layerwise = layerwise;
  options.query_sync = query_sync;
  config.muxwise_options = options;
  config.drain_timeout_seconds = 240.0;
  harness::RunOutcome outcome = harness::RunWorkload(
      harness::EngineKind::kMuxWise, d, trace, &estimator, config);
  outcome.engine = label;
  return outcome;
}

void RunModel(const llm::ModelConfig& model, double rate) {
  const serve::Deployment d =
      serve::Deployment::Make(model, gpu::GpuSpec::A100());
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(d);
  for (double r : {rate, rate * 1.5}) {
    const workload::Trace trace = workload::GenerateTrace(
        workload::Dataset::kToolAgent, 150, r, 1900 +
        static_cast<std::uint64_t>(r * 10));
    bench::Banner("Fig. 19: " + model.name + " on Tool&Agent @ " +
                  std::to_string(r) + " req/s");
    bench::PrintLatencyHeader();
    bench::PrintLatencyRow(
        RunVariant(d, trace, estimator, true, true, "MuxWise"));
    bench::PrintLatencyRow(
        RunVariant(d, trace, estimator, false, true, "-layerwise"));
    bench::PrintLatencyRow(
        RunVariant(d, trace, estimator, false, false, "-querysync"));
  }
}

}  // namespace

int main() {
  RunModel(llm::ModelConfig::Llama8B(), 10.0);
  RunModel(llm::ModelConfig::Llama70B(), 2.0);

  // §4.4.2: bubble ratio under goodput-level load.
  bench::Banner("Sec. 4.4.2: bubble ratios at high load "
                "(Llama-8B, Tool&Agent)");
  const serve::Deployment d = serve::Deployment::Make(
      llm::ModelConfig::Llama8B(), gpu::GpuSpec::A100());
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(d);
  const workload::Trace trace = workload::GenerateTrace(
      workload::Dataset::kToolAgent, 600, 13.0, 1910);
  harness::RunConfig config;
  config.drain_timeout_seconds = 240.0;
  const harness::RunOutcome mux = harness::RunWorkload(
      harness::EngineKind::kMuxWise, d, trace, &estimator, config);
  const harness::RunOutcome chunked = harness::RunWorkload(
      harness::EngineKind::kChunked, d, trace, &estimator, config);
  std::printf("MuxWise bubble ratio : %5.1f%%  (paper: 7.7%%)\n",
              100.0 * mux.bubble_ratio);
  std::printf("Chunked bubble ratio : %5.1f%%  (paper: 4.5%%)\n",
              100.0 * chunked.bubble_ratio);
  std::printf(
      "\nShape check (paper): disabling layer-wise execution adds roughly\n"
      "the prefill launch time (~10 ms for Llama-70B) to decode latency;\n"
      "further disabling query-based synchronization degrades TBT by\n"
      "hundreds of ms (stalls waiting for prefill completion). MuxWise's\n"
      "bubble ratio is slightly higher than chunked's but does not cost\n"
      "goodput.\n");
  return 0;
}
