// Google-benchmark micro-benchmarks for the simulator substrate's hot
// paths: event-queue throughput, radix-tree matching/insertion,
// bandwidth arbitration re-rating, and predictor evaluation. These are
// the operations a long serving simulation executes millions of times.

#include <benchmark/benchmark.h>

#include "gpu/gpu.h"
#include "gpu/gpu_spec.h"
#include "kv/radix_tree.h"
#include "llm/cost_model.h"
#include "llm/model_config.h"
#include "llm/predictor.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace {

using namespace muxwise;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < state.range(0); ++i) {
      simulator.ScheduleAt(sim::Microseconds(i % 997), [] {});
    }
    benchmark::DoNotOptimize(simulator.Run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(10000);

void BM_RadixTreeInsertMatch(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    kv::RadixTree tree;
    for (int i = 0; i < state.range(0); ++i) {
      const std::int64_t stream = rng.UniformInt(1, 64);
      const std::int64_t len = rng.UniformInt(64, 4096);
      auto [added, lock] =
          tree.InsertAndLock({{stream, 0, len}}, static_cast<sim::Time>(i));
      tree.Unlock(lock);
      benchmark::DoNotOptimize(
          tree.MatchedPrefix({{stream, 0, len / 2}}, i));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RadixTreeInsertMatch)->Arg(256)->Arg(2048);

void BM_RadixTreeEviction(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    kv::RadixTree tree;
    for (int i = 0; i < state.range(0); ++i) {
      auto [added, lock] =
          tree.InsertAndLock({{i + 1, 0, 512}}, static_cast<sim::Time>(i));
      tree.Unlock(lock);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(tree.EvictLru(tree.total_tokens()));
  }
}
BENCHMARK(BM_RadixTreeEviction)->Arg(1024);

void BM_GpuConcurrentKernels(benchmark::State& state) {
  const gpu::GpuSpec spec = gpu::GpuSpec::A100();
  for (auto _ : state) {
    sim::Simulator simulator;
    gpu::Gpu device(&simulator, spec);
    const gpu::StreamId a = device.CreateStream(64);
    const gpu::StreamId b = device.CreateStream(44);
    for (int i = 0; i < state.range(0); ++i) {
      device.Launch(a, gpu::Kernel::Prefill(1e12, 2e9), {});
      device.Launch(b, gpu::Kernel::Decode(1e11, 18e9), {});
    }
    simulator.Run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_GpuConcurrentKernels)->Arg(100);

void BM_PredictorEvaluate(benchmark::State& state) {
  sim::Simulator simulator;
  gpu::Gpu device(&simulator, gpu::GpuSpec::A100());
  llm::CostModel cost(llm::ModelConfig::Llama70B(), 8, gpu::GpuSpec::A100());
  const llm::SoloRunPredictor predictor =
      llm::SoloRunPredictor::Train(device, cost, {16, 48, 96});
  const std::vector<std::int64_t> ctx(64, 4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.PredictDecode(ctx, 48));
  }
}
BENCHMARK(BM_PredictorEvaluate);

void BM_CostModelDecodeKernel(benchmark::State& state) {
  llm::CostModel cost(llm::ModelConfig::Llama70B(), 8, gpu::GpuSpec::A100());
  const std::vector<std::int64_t> ctx(128, 4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost.DecodeIteration(ctx));
  }
}
BENCHMARK(BM_CostModelDecodeKernel);

}  // namespace
