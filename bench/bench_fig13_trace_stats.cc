// Reproduces paper Fig. 13: the scaled real-world workload traces and
// their burstiness (request-rate spikes up to 13x within a minute),
// plus the Table 1 length statistics of every generated dataset.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "workload/datasets.h"

using namespace muxwise;

namespace {

void PrintRateCurve(const workload::Trace& trace) {
  const std::vector<double> curve = trace.RateCurve(10.0);
  double mean = 0.0, peak = 0.0;
  for (double r : curve) {
    mean += r;
    peak = std::max(peak, r);
  }
  mean /= std::max<std::size_t>(1, curve.size());
  std::printf("%-22s: %5zu requests over %5.0f s, mean %.2f req/s, "
              "peak %.2f req/s (%.1fx spike)\n",
              trace.name.c_str(), trace.requests.size(),
              trace.SpanSeconds(), mean, peak, peak / std::max(mean, 1e-9));
  // Coarse sparkline of the rate curve (20 buckets).
  std::printf("  rate curve: ");
  const std::size_t stride = std::max<std::size_t>(1, curve.size() / 40);
  for (std::size_t i = 0; i < curve.size(); i += stride) {
    const double frac = curve[i] / std::max(peak, 1e-9);
    std::printf("%c", " .:-=+*#%@"[std::min(9, static_cast<int>(frac * 9.99))]);
  }
  std::printf("\n");
}

void PrintTable1Row(workload::Dataset dataset) {
  const workload::Trace trace = workload::GenerateTrace(dataset, 3000, 10.0,
                                                        777);
  const workload::LengthStats in = trace.InputStats();
  const workload::LengthStats out = trace.OutputStats();
  const workload::LengthStats reused = trace.ReusedStats();
  std::printf("%-14s | %6lld/%6.0f/%6lld | %5lld/%5.0f/%5lld | "
              "%5lld/%5.0f/%6lld\n",
              workload::DatasetName(dataset),
              static_cast<long long>(in.min), in.mean,
              static_cast<long long>(in.max),
              static_cast<long long>(out.min), out.mean,
              static_cast<long long>(out.max),
              static_cast<long long>(reused.min), reused.mean,
              static_cast<long long>(reused.max));
}

}  // namespace

int main() {
  bench::Banner("Fig. 13: scaled real-world traces (bursty arrivals)");
  PrintRateCurve(workload::GenerateBurstyTrace(
      workload::Dataset::kConversation, 4.0, 900.0, 13.0, 131));
  PrintRateCurve(workload::GenerateBurstyTrace(
      workload::Dataset::kToolAgent, 4.0, 900.0, 13.0, 132));

  bench::Banner("Table 1 calibration: generated min/mean/max "
                "(input | output | reused)");
  PrintTable1Row(workload::Dataset::kShareGpt);
  PrintTable1Row(workload::Dataset::kLoogle);
  PrintTable1Row(workload::Dataset::kOpenThoughts);
  PrintTable1Row(workload::Dataset::kConversation);
  PrintTable1Row(workload::Dataset::kToolAgent);
  std::printf(
      "\nPaper Table 1 targets: ShareGPT 4/226/1024 | 4/195/1838;\n"
      "LooGLE 3380/30k/81k | 2/15/326; OpenThoughts 311/709/4633 |\n"
      "684/8374/32k (243 reused); Conversation 891/7538/123k | 1/342/2000\n"
      "(0/4496/120k reused); Tool&Agent 891/8596/123k | 1/182/2000\n"
      "(0/4905/120k reused).\n");
  return 0;
}
