// Reproduces paper Fig. 16: 99%-ile TTFT and TBT on newer GPUs and a
// larger MoE model — Llama-8B and Llama-70B on 8xH100, and
// Qwen3-235B-A22B on 8xH200 — comparing MuxWise against chunked
// prefill (the only baseline that supports all these deployments).

#include <cstdio>

#include "bench_util.h"
#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "workload/datasets.h"

using namespace muxwise;

namespace {

void Compare(const llm::ModelConfig& model, const gpu::GpuSpec& spec,
             workload::Dataset dataset, double rate, const char* label) {
  const serve::Deployment d = serve::Deployment::Make(model, spec);
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(d);
  const workload::Trace trace = workload::GenerateBurstyTrace(
      dataset, rate, 150.0, 10.0, 1600);

  bench::Banner(std::string("Fig. 16 ") + label + " (" +
                std::to_string(trace.requests.size()) + " requests)");
  bench::PrintLatencyHeader();
  harness::RunConfig config;
  config.drain_timeout_seconds = 200.0;
  const harness::RunOutcome mux = harness::RunWorkload(
      harness::EngineKind::kMuxWise, d, trace, &estimator, config);
  const harness::RunOutcome chunked = harness::RunWorkload(
      harness::EngineKind::kChunked, d, trace, &estimator, config);
  bench::PrintLatencyRow(mux);
  bench::PrintLatencyRow(chunked);
  if (mux.stable && chunked.stable && mux.ttft.p99_ms > 0) {
    std::printf("P99 TTFT speedup %.2fx, P99 TBT speedup %.2fx\n",
                chunked.ttft.p99_ms / mux.ttft.p99_ms,
                chunked.tbt.p99_ms / mux.tbt.p99_ms);
  }
}

}  // namespace

int main() {
  Compare(llm::ModelConfig::Llama8B(), gpu::GpuSpec::H100(),
          workload::Dataset::kConversation, 20.0, "(a) Llama-8B, 8xH100");
  Compare(llm::ModelConfig::Llama70B(), gpu::GpuSpec::H100(),
          workload::Dataset::kConversation, 4.5, "(b) Llama-70B, 8xH100");
  Compare(llm::ModelConfig::Qwen235B(), gpu::GpuSpec::H200(),
          workload::Dataset::kToolAgent, 6.0, "(c) Qwen-235B, 8xH200");
  std::printf(
      "\nShape check (paper): the PD-multiplexing advantage generalizes to\n"
      "newer GPUs and the MoE model — average 2.28x P99 TTFT and 1.81x P99\n"
      "TBT speedups over chunked prefill across these settings.\n");
  return 0;
}
