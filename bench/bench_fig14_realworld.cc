// Reproduces paper Fig. 14 (99%-ile TTFT and TBT on the scaled
// real-world Conversation and Tool&Agent traces, Llama-8B and
// Llama-70B on 8xA100) and Tables 3/4 (the other latency metrics for
// Llama-70B on both workloads).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "workload/datasets.h"

using namespace muxwise;

namespace {

constexpr harness::EngineKind kEngines[] = {
    harness::EngineKind::kMuxWise, harness::EngineKind::kChunked,
    harness::EngineKind::kNanoFlow, harness::EngineKind::kLoongServe,
    harness::EngineKind::kSglangPd};

std::vector<harness::RunOutcome> RunAll(
    const serve::Deployment& d, const workload::Trace& trace,
    const core::ContentionEstimator& estimator) {
  std::vector<harness::RunOutcome> outcomes;
  for (harness::EngineKind kind : kEngines) {
    harness::RunConfig config;
    config.drain_timeout_seconds = 240.0;
    outcomes.push_back(
        harness::RunWorkload(kind, d, trace, &estimator, config));
  }
  return outcomes;
}

}  // namespace

int main() {
  const gpu::GpuSpec a100 = gpu::GpuSpec::A100();
  struct Config {
    llm::ModelConfig model;
    workload::Dataset dataset;
    double rate;
    const char* label;
  };
  // Rates scaled so the 8-GPU server runs loaded but not past every
  // engine's capacity (the paper similarly scales down cluster traces).
  const Config configs[] = {
      {llm::ModelConfig::Llama8B(), workload::Dataset::kConversation, 6.0,
       "(a) Llama-8B, Conversation"},
      {llm::ModelConfig::Llama8B(), workload::Dataset::kToolAgent, 6.0,
       "(b) Llama-8B, Tool&Agent"},
      {llm::ModelConfig::Llama70B(), workload::Dataset::kConversation, 1.0,
       "(c) Llama-70B, Conversation"},
      {llm::ModelConfig::Llama70B(), workload::Dataset::kToolAgent, 1.0,
       "(d) Llama-70B, Tool&Agent"},
  };

  std::vector<harness::RunOutcome> table3, table4;
  llm::ModelConfig last_model;
  core::ContentionEstimator* estimator = nullptr;
  for (const Config& config : configs) {
    const serve::Deployment d = serve::Deployment::Make(config.model, a100);
    if (estimator == nullptr || last_model.name != config.model.name) {
      delete estimator;
      estimator = new core::ContentionEstimator(
          core::ContentionEstimator::BuildOffline(d));
      last_model = config.model;
    }
    const workload::Trace trace = workload::GenerateBurstyTrace(
        config.dataset, config.rate, 180.0, 13.0,
        1400 + static_cast<std::uint64_t>(config.rate));

    bench::Banner(std::string("Fig. 14-") + config.label +
                  " (bursty trace, " + std::to_string(trace.requests.size()) +
                  " requests)");
    bench::PrintLatencyHeader();
    const std::vector<harness::RunOutcome> outcomes =
        RunAll(d, trace, *estimator);
    for (const harness::RunOutcome& o : outcomes) bench::PrintLatencyRow(o);

    if (config.model.name == "Llama-70B") {
      if (config.dataset == workload::Dataset::kConversation) {
        table3 = outcomes;
      } else {
        table4 = outcomes;
      }
    }
  }
  delete estimator;

  bench::Banner("Table 3: other metrics, Llama-70B on Conversation "
                "(TTFT/E2E in s, TBT/TPOT in ms)");
  bench::PrintOtherMetricsHeader();
  for (const harness::RunOutcome& o : table3) bench::PrintOtherMetricsRow(o);

  bench::Banner("Table 4: other metrics, Llama-70B on Tool&Agent");
  bench::PrintOtherMetricsHeader();
  for (const harness::RunOutcome& o : table4) bench::PrintOtherMetricsRow(o);

  std::printf(
      "\nShape check (paper): MuxWise delivers the best P99 TTFT across\n"
      "all four settings while meeting the TBT SLO; chunked-prefill and\n"
      "NanoFlow violate TBT on these long-reuse traces; SGLang-PD gets\n"
      "the best raw TBT (statically over-reserved decode) but worse TTFT;\n"
      "LoongServe pays multi-turn recomputation.\n");
  return 0;
}
