// Reproduces paper §6's prototype comparisons: MuxWise against a
// WindServe-style variant (plain-stream multiplexing, unmanaged
// contention; paper: MuxWise 1.61x goodput on ShareGPT, Llama-8B, one
// A100, 50 ms TBT) and an enhanced Tropical-style temporal-only variant
// (layer-wise prefill squeezed into decode slack; paper: >= 20% worse).

#include <cstdio>

#include "bench_util.h"
#include "gpu/gpu_spec.h"
#include "harness/runner.h"
#include "llm/model_config.h"
#include "serve/deployment.h"
#include "workload/datasets.h"

using namespace muxwise;

int main() {
  serve::Deployment d = serve::Deployment::Make(
      llm::ModelConfig::Llama8B(), gpu::GpuSpec::A100(), /*num_gpus=*/1);
  // The simulated single-GPU 8B decodes faster (relative to its
  // prefill) than the paper's measured kernels, so a 50 ms target never
  // binds. Tighten the TBT target to preserve the paper's slack ratio
  // (decode iteration ~= 2/3 of the SLO) so contention management is
  // actually exercised.
  d.slo.tbt = sim::Milliseconds(18);
  const core::ContentionEstimator estimator =
      core::ContentionEstimator::BuildOffline(d);

  bench::Banner("Sec. 6: goodput of multiplexing variants "
                "(Llama-8B, one A100, ShareGPT, strict TBT)");
  const workload::Trace base =
      workload::GenerateTrace(workload::Dataset::kShareGpt, 200, 1.0, 2101);
  const std::vector<double> rates = {2, 4, 6, 8, 10, 12, 14, 16,
                                     18, 20, 24, 28, 32, 36, 40};

  double muxwise_goodput = 0.0;
  for (harness::EngineKind kind :
       {harness::EngineKind::kMuxWise, harness::EngineKind::kWindServe,
        harness::EngineKind::kTemporal}) {
    const harness::GoodputResult result =
        harness::SweepGoodput(kind, d, base, rates, &estimator);
    std::printf("%-11s goodput: %5.1f req/s", harness::EngineKindName(kind),
                result.goodput_rps);
    if (kind == harness::EngineKind::kMuxWise) {
      muxwise_goodput = result.goodput_rps;
      std::printf("\n");
    } else if (result.goodput_rps > 0) {
      std::printf("   (MuxWise advantage: %.2fx)\n",
                  muxwise_goodput / result.goodput_rps);
    } else {
      std::printf("   (never meets the SLO)\n");
    }
  }

  bench::Banner("Latency detail at a shared moderate rate (8 req/s)");
  workload::Trace trace = base;
  workload::ResampleArrivalsPoisson(trace, 8.0, 2102);
  bench::PrintLatencyHeader();
  for (harness::EngineKind kind :
       {harness::EngineKind::kMuxWise, harness::EngineKind::kWindServe,
        harness::EngineKind::kTemporal}) {
    bench::PrintLatencyRow(
        harness::RunWorkload(kind, d, trace, &estimator));
  }
  std::printf(
      "\nShape check (paper): spatial multiplexing with managed partitions\n"
      "(MuxWise) sustains more goodput than unmanaged streams (WindServe,\n"
      "1.61x in the paper) and than temporal-only layering (Tropical-like,\n"
      ">= 20%% worse), which cannot use the SMs decode leaves idle.\n");
  return 0;
}
