file(REMOVE_RECURSE
  "CMakeFiles/goodput_explorer.dir/goodput_explorer.cpp.o"
  "CMakeFiles/goodput_explorer.dir/goodput_explorer.cpp.o.d"
  "goodput_explorer"
  "goodput_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goodput_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
