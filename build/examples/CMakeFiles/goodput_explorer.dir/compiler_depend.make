# Empty compiler generated dependencies file for goodput_explorer.
# This may be replaced when dependencies are built.
