file(REMOVE_RECURSE
  "CMakeFiles/long_context_mix.dir/long_context_mix.cpp.o"
  "CMakeFiles/long_context_mix.dir/long_context_mix.cpp.o.d"
  "long_context_mix"
  "long_context_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_context_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
