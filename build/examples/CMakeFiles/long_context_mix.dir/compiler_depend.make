# Empty compiler generated dependencies file for long_context_mix.
# This may be replaced when dependencies are built.
