# Empty dependencies file for bench_fig20_preemption_cdf.
# This may be replaced when dependencies are built.
