file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_variants.dir/bench_sec6_variants.cc.o"
  "CMakeFiles/bench_sec6_variants.dir/bench_sec6_variants.cc.o.d"
  "bench_sec6_variants"
  "bench_sec6_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
