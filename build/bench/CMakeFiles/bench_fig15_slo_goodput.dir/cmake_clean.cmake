file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_slo_goodput.dir/bench_fig15_slo_goodput.cc.o"
  "CMakeFiles/bench_fig15_slo_goodput.dir/bench_fig15_slo_goodput.cc.o.d"
  "bench_fig15_slo_goodput"
  "bench_fig15_slo_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_slo_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
