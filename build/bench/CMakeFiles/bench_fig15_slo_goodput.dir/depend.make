# Empty dependencies file for bench_fig15_slo_goodput.
# This may be replaced when dependencies are built.
