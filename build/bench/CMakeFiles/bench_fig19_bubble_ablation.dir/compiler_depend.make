# Empty compiler generated dependencies file for bench_fig19_bubble_ablation.
# This may be replaced when dependencies are built.
