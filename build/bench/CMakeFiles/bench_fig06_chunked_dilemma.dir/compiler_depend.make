# Empty compiler generated dependencies file for bench_fig06_chunked_dilemma.
# This may be replaced when dependencies are built.
