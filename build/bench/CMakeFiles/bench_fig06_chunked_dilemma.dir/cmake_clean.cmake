file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_chunked_dilemma.dir/bench_fig06_chunked_dilemma.cc.o"
  "CMakeFiles/bench_fig06_chunked_dilemma.dir/bench_fig06_chunked_dilemma.cc.o.d"
  "bench_fig06_chunked_dilemma"
  "bench_fig06_chunked_dilemma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_chunked_dilemma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
