file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_cache_hit_rate.dir/bench_fig05_cache_hit_rate.cc.o"
  "CMakeFiles/bench_fig05_cache_hit_rate.dir/bench_fig05_cache_hit_rate.cc.o.d"
  "bench_fig05_cache_hit_rate"
  "bench_fig05_cache_hit_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_cache_hit_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
