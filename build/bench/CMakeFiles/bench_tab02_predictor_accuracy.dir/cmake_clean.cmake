file(REMOVE_RECURSE
  "CMakeFiles/bench_tab02_predictor_accuracy.dir/bench_tab02_predictor_accuracy.cc.o"
  "CMakeFiles/bench_tab02_predictor_accuracy.dir/bench_tab02_predictor_accuracy.cc.o.d"
  "bench_tab02_predictor_accuracy"
  "bench_tab02_predictor_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_predictor_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
