# Empty dependencies file for bench_tab02_predictor_accuracy.
# This may be replaced when dependencies are built.
