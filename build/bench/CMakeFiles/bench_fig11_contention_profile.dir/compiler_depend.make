# Empty compiler generated dependencies file for bench_fig11_contention_profile.
# This may be replaced when dependencies are built.
