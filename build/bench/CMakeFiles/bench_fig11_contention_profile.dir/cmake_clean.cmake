file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_contention_profile.dir/bench_fig11_contention_profile.cc.o"
  "CMakeFiles/bench_fig11_contention_profile.dir/bench_fig11_contention_profile.cc.o.d"
  "bench_fig11_contention_profile"
  "bench_fig11_contention_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_contention_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
