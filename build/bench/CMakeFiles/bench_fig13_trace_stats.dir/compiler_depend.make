# Empty compiler generated dependencies file for bench_fig13_trace_stats.
# This may be replaced when dependencies are built.
