# Empty dependencies file for bench_fig03_resource_demand.
# This may be replaced when dependencies are built.
