file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_resource_demand.dir/bench_fig03_resource_demand.cc.o"
  "CMakeFiles/bench_fig03_resource_demand.dir/bench_fig03_resource_demand.cc.o.d"
  "bench_fig03_resource_demand"
  "bench_fig03_resource_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_resource_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
