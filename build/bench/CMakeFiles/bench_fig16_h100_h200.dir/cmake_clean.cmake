file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_h100_h200.dir/bench_fig16_h100_h200.cc.o"
  "CMakeFiles/bench_fig16_h100_h200.dir/bench_fig16_h100_h200.cc.o.d"
  "bench_fig16_h100_h200"
  "bench_fig16_h100_h200.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_h100_h200.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
