# Empty compiler generated dependencies file for bench_fig16_h100_h200.
# This may be replaced when dependencies are built.
