# Empty compiler generated dependencies file for bench_fig18_partition_dynamics.
# This may be replaced when dependencies are built.
