file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_partition_dynamics.dir/bench_fig18_partition_dynamics.cc.o"
  "CMakeFiles/bench_fig18_partition_dynamics.dir/bench_fig18_partition_dynamics.cc.o.d"
  "bench_fig18_partition_dynamics"
  "bench_fig18_partition_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_partition_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
