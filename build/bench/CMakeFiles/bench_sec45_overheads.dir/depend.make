# Empty dependencies file for bench_sec45_overheads.
# This may be replaced when dependencies are built.
