file(REMOVE_RECURSE
  "CMakeFiles/bench_sec45_overheads.dir/bench_sec45_overheads.cc.o"
  "CMakeFiles/bench_sec45_overheads.dir/bench_sec45_overheads.cc.o.d"
  "bench_sec45_overheads"
  "bench_sec45_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec45_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
