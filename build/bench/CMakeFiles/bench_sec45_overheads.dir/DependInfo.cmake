
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sec45_overheads.cc" "bench/CMakeFiles/bench_sec45_overheads.dir/bench_sec45_overheads.cc.o" "gcc" "bench/CMakeFiles/bench_sec45_overheads.dir/bench_sec45_overheads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/muxwise_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/muxwise_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/muxwise_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/serve/CMakeFiles/muxwise_serve.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/muxwise_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/muxwise_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/muxwise_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/muxwise_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/muxwise_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
