file(REMOVE_RECURSE
  "CMakeFiles/muxwise_workload.dir/datasets.cc.o"
  "CMakeFiles/muxwise_workload.dir/datasets.cc.o.d"
  "CMakeFiles/muxwise_workload.dir/request_spec.cc.o"
  "CMakeFiles/muxwise_workload.dir/request_spec.cc.o.d"
  "CMakeFiles/muxwise_workload.dir/trace_io.cc.o"
  "CMakeFiles/muxwise_workload.dir/trace_io.cc.o.d"
  "libmuxwise_workload.a"
  "libmuxwise_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muxwise_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
