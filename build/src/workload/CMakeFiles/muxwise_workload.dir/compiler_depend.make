# Empty compiler generated dependencies file for muxwise_workload.
# This may be replaced when dependencies are built.
