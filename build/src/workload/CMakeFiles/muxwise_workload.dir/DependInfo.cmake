
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/datasets.cc" "src/workload/CMakeFiles/muxwise_workload.dir/datasets.cc.o" "gcc" "src/workload/CMakeFiles/muxwise_workload.dir/datasets.cc.o.d"
  "/root/repo/src/workload/request_spec.cc" "src/workload/CMakeFiles/muxwise_workload.dir/request_spec.cc.o" "gcc" "src/workload/CMakeFiles/muxwise_workload.dir/request_spec.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/workload/CMakeFiles/muxwise_workload.dir/trace_io.cc.o" "gcc" "src/workload/CMakeFiles/muxwise_workload.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/muxwise_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/muxwise_kv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
