file(REMOVE_RECURSE
  "libmuxwise_workload.a"
)
