file(REMOVE_RECURSE
  "CMakeFiles/muxwise_harness.dir/runner.cc.o"
  "CMakeFiles/muxwise_harness.dir/runner.cc.o.d"
  "libmuxwise_harness.a"
  "libmuxwise_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muxwise_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
