file(REMOVE_RECURSE
  "libmuxwise_harness.a"
)
