# Empty compiler generated dependencies file for muxwise_harness.
# This may be replaced when dependencies are built.
