file(REMOVE_RECURSE
  "libmuxwise_kv.a"
)
