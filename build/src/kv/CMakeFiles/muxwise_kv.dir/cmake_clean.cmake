file(REMOVE_RECURSE
  "CMakeFiles/muxwise_kv.dir/kv_pool.cc.o"
  "CMakeFiles/muxwise_kv.dir/kv_pool.cc.o.d"
  "CMakeFiles/muxwise_kv.dir/radix_tree.cc.o"
  "CMakeFiles/muxwise_kv.dir/radix_tree.cc.o.d"
  "CMakeFiles/muxwise_kv.dir/token_seq.cc.o"
  "CMakeFiles/muxwise_kv.dir/token_seq.cc.o.d"
  "libmuxwise_kv.a"
  "libmuxwise_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muxwise_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
