# Empty dependencies file for muxwise_kv.
# This may be replaced when dependencies are built.
