
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/kv_pool.cc" "src/kv/CMakeFiles/muxwise_kv.dir/kv_pool.cc.o" "gcc" "src/kv/CMakeFiles/muxwise_kv.dir/kv_pool.cc.o.d"
  "/root/repo/src/kv/radix_tree.cc" "src/kv/CMakeFiles/muxwise_kv.dir/radix_tree.cc.o" "gcc" "src/kv/CMakeFiles/muxwise_kv.dir/radix_tree.cc.o.d"
  "/root/repo/src/kv/token_seq.cc" "src/kv/CMakeFiles/muxwise_kv.dir/token_seq.cc.o" "gcc" "src/kv/CMakeFiles/muxwise_kv.dir/token_seq.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/muxwise_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
