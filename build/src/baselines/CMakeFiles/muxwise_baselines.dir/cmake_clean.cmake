file(REMOVE_RECURSE
  "CMakeFiles/muxwise_baselines.dir/chunked_prefill.cc.o"
  "CMakeFiles/muxwise_baselines.dir/chunked_prefill.cc.o.d"
  "CMakeFiles/muxwise_baselines.dir/loongserve.cc.o"
  "CMakeFiles/muxwise_baselines.dir/loongserve.cc.o.d"
  "CMakeFiles/muxwise_baselines.dir/static_disagg.cc.o"
  "CMakeFiles/muxwise_baselines.dir/static_disagg.cc.o.d"
  "libmuxwise_baselines.a"
  "libmuxwise_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muxwise_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
