# Empty dependencies file for muxwise_baselines.
# This may be replaced when dependencies are built.
