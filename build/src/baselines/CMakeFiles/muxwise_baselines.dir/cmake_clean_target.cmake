file(REMOVE_RECURSE
  "libmuxwise_baselines.a"
)
