
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/cluster.cc" "src/gpu/CMakeFiles/muxwise_gpu.dir/cluster.cc.o" "gcc" "src/gpu/CMakeFiles/muxwise_gpu.dir/cluster.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/gpu/CMakeFiles/muxwise_gpu.dir/gpu.cc.o" "gcc" "src/gpu/CMakeFiles/muxwise_gpu.dir/gpu.cc.o.d"
  "/root/repo/src/gpu/gpu_spec.cc" "src/gpu/CMakeFiles/muxwise_gpu.dir/gpu_spec.cc.o" "gcc" "src/gpu/CMakeFiles/muxwise_gpu.dir/gpu_spec.cc.o.d"
  "/root/repo/src/gpu/kernel.cc" "src/gpu/CMakeFiles/muxwise_gpu.dir/kernel.cc.o" "gcc" "src/gpu/CMakeFiles/muxwise_gpu.dir/kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/muxwise_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
