# Empty compiler generated dependencies file for muxwise_gpu.
# This may be replaced when dependencies are built.
