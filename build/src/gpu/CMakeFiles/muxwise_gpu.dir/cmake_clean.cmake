file(REMOVE_RECURSE
  "CMakeFiles/muxwise_gpu.dir/cluster.cc.o"
  "CMakeFiles/muxwise_gpu.dir/cluster.cc.o.d"
  "CMakeFiles/muxwise_gpu.dir/gpu.cc.o"
  "CMakeFiles/muxwise_gpu.dir/gpu.cc.o.d"
  "CMakeFiles/muxwise_gpu.dir/gpu_spec.cc.o"
  "CMakeFiles/muxwise_gpu.dir/gpu_spec.cc.o.d"
  "CMakeFiles/muxwise_gpu.dir/kernel.cc.o"
  "CMakeFiles/muxwise_gpu.dir/kernel.cc.o.d"
  "libmuxwise_gpu.a"
  "libmuxwise_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muxwise_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
