file(REMOVE_RECURSE
  "libmuxwise_gpu.a"
)
