file(REMOVE_RECURSE
  "libmuxwise_llm.a"
)
