
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm/cost_model.cc" "src/llm/CMakeFiles/muxwise_llm.dir/cost_model.cc.o" "gcc" "src/llm/CMakeFiles/muxwise_llm.dir/cost_model.cc.o.d"
  "/root/repo/src/llm/least_squares.cc" "src/llm/CMakeFiles/muxwise_llm.dir/least_squares.cc.o" "gcc" "src/llm/CMakeFiles/muxwise_llm.dir/least_squares.cc.o.d"
  "/root/repo/src/llm/model_config.cc" "src/llm/CMakeFiles/muxwise_llm.dir/model_config.cc.o" "gcc" "src/llm/CMakeFiles/muxwise_llm.dir/model_config.cc.o.d"
  "/root/repo/src/llm/predictor.cc" "src/llm/CMakeFiles/muxwise_llm.dir/predictor.cc.o" "gcc" "src/llm/CMakeFiles/muxwise_llm.dir/predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/muxwise_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/muxwise_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
