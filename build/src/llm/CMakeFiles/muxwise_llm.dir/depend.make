# Empty dependencies file for muxwise_llm.
# This may be replaced when dependencies are built.
