file(REMOVE_RECURSE
  "CMakeFiles/muxwise_llm.dir/cost_model.cc.o"
  "CMakeFiles/muxwise_llm.dir/cost_model.cc.o.d"
  "CMakeFiles/muxwise_llm.dir/least_squares.cc.o"
  "CMakeFiles/muxwise_llm.dir/least_squares.cc.o.d"
  "CMakeFiles/muxwise_llm.dir/model_config.cc.o"
  "CMakeFiles/muxwise_llm.dir/model_config.cc.o.d"
  "CMakeFiles/muxwise_llm.dir/predictor.cc.o"
  "CMakeFiles/muxwise_llm.dir/predictor.cc.o.d"
  "libmuxwise_llm.a"
  "libmuxwise_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muxwise_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
