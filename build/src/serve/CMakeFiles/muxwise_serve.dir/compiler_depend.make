# Empty compiler generated dependencies file for muxwise_serve.
# This may be replaced when dependencies are built.
