file(REMOVE_RECURSE
  "libmuxwise_serve.a"
)
