file(REMOVE_RECURSE
  "CMakeFiles/muxwise_serve.dir/admission.cc.o"
  "CMakeFiles/muxwise_serve.dir/admission.cc.o.d"
  "CMakeFiles/muxwise_serve.dir/deployment.cc.o"
  "CMakeFiles/muxwise_serve.dir/deployment.cc.o.d"
  "CMakeFiles/muxwise_serve.dir/frontend.cc.o"
  "CMakeFiles/muxwise_serve.dir/frontend.cc.o.d"
  "CMakeFiles/muxwise_serve.dir/metrics.cc.o"
  "CMakeFiles/muxwise_serve.dir/metrics.cc.o.d"
  "libmuxwise_serve.a"
  "libmuxwise_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muxwise_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
