
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serve/admission.cc" "src/serve/CMakeFiles/muxwise_serve.dir/admission.cc.o" "gcc" "src/serve/CMakeFiles/muxwise_serve.dir/admission.cc.o.d"
  "/root/repo/src/serve/deployment.cc" "src/serve/CMakeFiles/muxwise_serve.dir/deployment.cc.o" "gcc" "src/serve/CMakeFiles/muxwise_serve.dir/deployment.cc.o.d"
  "/root/repo/src/serve/frontend.cc" "src/serve/CMakeFiles/muxwise_serve.dir/frontend.cc.o" "gcc" "src/serve/CMakeFiles/muxwise_serve.dir/frontend.cc.o.d"
  "/root/repo/src/serve/metrics.cc" "src/serve/CMakeFiles/muxwise_serve.dir/metrics.cc.o" "gcc" "src/serve/CMakeFiles/muxwise_serve.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/muxwise_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/muxwise_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/muxwise_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/muxwise_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/muxwise_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
