file(REMOVE_RECURSE
  "libmuxwise_core.a"
)
