file(REMOVE_RECURSE
  "CMakeFiles/muxwise_core.dir/dispatcher.cc.o"
  "CMakeFiles/muxwise_core.dir/dispatcher.cc.o.d"
  "CMakeFiles/muxwise_core.dir/estimator.cc.o"
  "CMakeFiles/muxwise_core.dir/estimator.cc.o.d"
  "CMakeFiles/muxwise_core.dir/multiplex_engine.cc.o"
  "CMakeFiles/muxwise_core.dir/multiplex_engine.cc.o.d"
  "CMakeFiles/muxwise_core.dir/muxwise_engine.cc.o"
  "CMakeFiles/muxwise_core.dir/muxwise_engine.cc.o.d"
  "libmuxwise_core.a"
  "libmuxwise_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muxwise_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
