# Empty compiler generated dependencies file for muxwise_core.
# This may be replaced when dependencies are built.
