file(REMOVE_RECURSE
  "libmuxwise_sim.a"
)
