file(REMOVE_RECURSE
  "CMakeFiles/muxwise_sim.dir/logging.cc.o"
  "CMakeFiles/muxwise_sim.dir/logging.cc.o.d"
  "CMakeFiles/muxwise_sim.dir/rng.cc.o"
  "CMakeFiles/muxwise_sim.dir/rng.cc.o.d"
  "CMakeFiles/muxwise_sim.dir/simulator.cc.o"
  "CMakeFiles/muxwise_sim.dir/simulator.cc.o.d"
  "CMakeFiles/muxwise_sim.dir/time.cc.o"
  "CMakeFiles/muxwise_sim.dir/time.cc.o.d"
  "libmuxwise_sim.a"
  "libmuxwise_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muxwise_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
