# Empty dependencies file for muxwise_sim.
# This may be replaced when dependencies are built.
