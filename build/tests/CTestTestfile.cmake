# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_model_config[1]_include.cmake")
include("/root/repo/build/tests/test_cost_model[1]_include.cmake")
include("/root/repo/build/tests/test_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_least_squares[1]_include.cmake")
include("/root/repo/build/tests/test_token_seq[1]_include.cmake")
include("/root/repo/build/tests/test_radix_tree[1]_include.cmake")
include("/root/repo/build/tests/test_kv_pool[1]_include.cmake")
include("/root/repo/build/tests/test_datasets[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_admission[1]_include.cmake")
include("/root/repo/build/tests/test_deployment[1]_include.cmake")
include("/root/repo/build/tests/test_chunked[1]_include.cmake")
include("/root/repo/build/tests/test_static_disagg[1]_include.cmake")
include("/root/repo/build/tests/test_loongserve[1]_include.cmake")
include("/root/repo/build/tests/test_estimator[1]_include.cmake")
include("/root/repo/build/tests/test_dispatcher[1]_include.cmake")
include("/root/repo/build/tests/test_muxwise_engine[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_multiplex_engine[1]_include.cmake")
