file(REMOVE_RECURSE
  "CMakeFiles/test_token_seq.dir/test_token_seq.cc.o"
  "CMakeFiles/test_token_seq.dir/test_token_seq.cc.o.d"
  "test_token_seq"
  "test_token_seq.pdb"
  "test_token_seq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_token_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
