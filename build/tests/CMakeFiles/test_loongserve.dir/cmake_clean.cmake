file(REMOVE_RECURSE
  "CMakeFiles/test_loongserve.dir/test_loongserve.cc.o"
  "CMakeFiles/test_loongserve.dir/test_loongserve.cc.o.d"
  "test_loongserve"
  "test_loongserve.pdb"
  "test_loongserve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loongserve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
