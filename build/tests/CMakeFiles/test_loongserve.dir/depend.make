# Empty dependencies file for test_loongserve.
# This may be replaced when dependencies are built.
