# Empty dependencies file for test_muxwise_engine.
# This may be replaced when dependencies are built.
