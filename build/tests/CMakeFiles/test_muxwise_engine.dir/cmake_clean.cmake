file(REMOVE_RECURSE
  "CMakeFiles/test_muxwise_engine.dir/test_muxwise_engine.cc.o"
  "CMakeFiles/test_muxwise_engine.dir/test_muxwise_engine.cc.o.d"
  "test_muxwise_engine"
  "test_muxwise_engine.pdb"
  "test_muxwise_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_muxwise_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
