file(REMOVE_RECURSE
  "CMakeFiles/test_multiplex_engine.dir/test_multiplex_engine.cc.o"
  "CMakeFiles/test_multiplex_engine.dir/test_multiplex_engine.cc.o.d"
  "test_multiplex_engine"
  "test_multiplex_engine.pdb"
  "test_multiplex_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiplex_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
