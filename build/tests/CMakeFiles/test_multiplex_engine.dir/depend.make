# Empty dependencies file for test_multiplex_engine.
# This may be replaced when dependencies are built.
