# Empty compiler generated dependencies file for test_static_disagg.
# This may be replaced when dependencies are built.
