file(REMOVE_RECURSE
  "CMakeFiles/test_static_disagg.dir/test_static_disagg.cc.o"
  "CMakeFiles/test_static_disagg.dir/test_static_disagg.cc.o.d"
  "test_static_disagg"
  "test_static_disagg.pdb"
  "test_static_disagg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_disagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
